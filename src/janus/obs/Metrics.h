//===----------------------------------------------------------------------===//
///
/// \file
/// The observability metrics registry: named counters and fixed-bucket
/// latency histograms.
///
/// Instruments are created by name at setup time (creation takes a
/// mutex) and recorded through stable references on the hot path
/// (lock-free). Both instrument kinds are striped over
/// cache-line-padded per-thread shards — a record() is an uncontended
/// relaxed fetch-add on lines the calling thread effectively owns —
/// and merged only at report time, so instrumenting the commit path
/// costs the same whether one worker is running or sixteen.
///
/// Histograms use fixed exponential (power-of-two microsecond) bucket
/// bounds, so two runs' histograms are directly comparable and the
/// merge is a plain vector add. Durations are accumulated in integer
/// nanoseconds to keep the sum exact under concurrent updates.
///
//===----------------------------------------------------------------------===//

#ifndef JANUS_OBS_METRICS_H
#define JANUS_OBS_METRICS_H

#include "janus/support/Striped.h"

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace janus {
namespace obs {

/// A named monotone counter (striped; see support/Striped.h).
class Counter {
public:
  void add(uint64_t Delta) { N.add(Delta); }
  void operator++() { N.add(1); }
  uint64_t load() const { return N.load(); }
  void reset() { N.reset(); }

private:
  StripedCounter N;
};

/// A latency histogram over fixed exponential bucket bounds:
/// bucket i counts samples in [2^(i-1), 2^i) microseconds (bucket 0 is
/// [0, 1us); the last bucket is unbounded). 22 buckets span sub-µs to
/// ~2 s, covering everything from a cache-hit detector query to a
/// starved serial fallback.
class LatencyHistogram {
public:
  static constexpr unsigned NumBuckets = 22;

  /// \returns the exclusive upper bound of \p Bucket in microseconds.
  /// The last bucket is logically unbounded; its reported bound (2^21
  /// us, ~2.1 s) keeps quantile estimates and JSON output finite.
  static double bucketBoundUs(unsigned Bucket) {
    if (Bucket >= NumBuckets)
      Bucket = NumBuckets - 1;
    return static_cast<double>(1u << Bucket);
  }

  void record(double Micros) {
    unsigned B = bucketFor(Micros);
    Stripe &S = Stripes[threadStripeId() & (NumStripes - 1)];
    S.Counts[B].fetch_add(1, std::memory_order_relaxed);
    uint64_t Nanos =
        Micros > 0 ? static_cast<uint64_t>(Micros * 1000.0) : 0;
    S.SumNanos.fetch_add(Nanos, std::memory_order_relaxed);
  }

  /// Merged view of a histogram, read after the run quiesces.
  struct Snapshot {
    std::vector<uint64_t> Counts; ///< NumBuckets entries.
    uint64_t Count = 0;
    double SumMicros = 0.0;

    double meanMicros() const {
      return Count ? SumMicros / static_cast<double>(Count) : 0.0;
    }

    /// Upper bucket bound at or above quantile \p Q in [0,1] — the
    /// conservative histogram-resolution quantile estimate.
    double quantileUs(double Q) const {
      if (!Count)
        return 0.0;
      uint64_t Target = static_cast<uint64_t>(
          std::ceil(Q * static_cast<double>(Count)));
      uint64_t Seen = 0;
      for (unsigned B = 0; B != NumBuckets; ++B) {
        Seen += Counts[B];
        if (Seen >= Target)
          return bucketBoundUs(B);
      }
      return bucketBoundUs(NumBuckets - 1);
    }
  };

  Snapshot snapshot() const {
    Snapshot Out;
    Out.Counts.assign(NumBuckets, 0);
    uint64_t Nanos = 0;
    for (const Stripe &S : Stripes) {
      for (unsigned B = 0; B != NumBuckets; ++B)
        Out.Counts[B] += S.Counts[B].load(std::memory_order_relaxed);
      Nanos += S.SumNanos.load(std::memory_order_relaxed);
    }
    for (uint64_t C : Out.Counts)
      Out.Count += C;
    Out.SumMicros = static_cast<double>(Nanos) / 1000.0;
    return Out;
  }

  void reset() {
    for (Stripe &S : Stripes) {
      for (unsigned B = 0; B != NumBuckets; ++B)
        S.Counts[B].store(0, std::memory_order_relaxed);
      S.SumNanos.store(0, std::memory_order_relaxed);
    }
  }

private:
  static constexpr unsigned NumStripes = 8; // Power of two.

  static unsigned bucketFor(double Micros) {
    if (!(Micros >= 1.0))
      return 0; // Also catches NaN/negatives from clock skew.
    double L = std::floor(std::log2(Micros));
    unsigned B = static_cast<unsigned>(L) + 1;
    return B < NumBuckets ? B : NumBuckets - 1;
  }

  struct alignas(CacheLineSize) Stripe {
    std::atomic<uint64_t> Counts[NumBuckets] = {};
    std::atomic<uint64_t> SumNanos{0};
  };
  Stripe Stripes[NumStripes];
};

/// The registry: name → instrument, created on first use. Lookup by
/// name is setup-path only; hot paths hold the returned reference
/// (stable: instruments are allocated once and never moved).
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name) {
    std::lock_guard<std::mutex> Guard(Mutex);
    std::unique_ptr<Counter> &Slot = Counters[Name];
    if (!Slot)
      Slot = std::make_unique<Counter>();
    return *Slot;
  }

  LatencyHistogram &histogram(const std::string &Name) {
    std::lock_guard<std::mutex> Guard(Mutex);
    std::unique_ptr<LatencyHistogram> &Slot = Histograms[Name];
    if (!Slot)
      Slot = std::make_unique<LatencyHistogram>();
    return *Slot;
  }

  /// Merged counter values, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> counterValues() const {
    std::lock_guard<std::mutex> Guard(Mutex);
    std::vector<std::pair<std::string, uint64_t>> Out;
    Out.reserve(Counters.size());
    for (const auto &[Name, C] : Counters)
      Out.emplace_back(Name, C->load());
    return Out;
  }

  /// Merged histogram snapshots, sorted by name.
  std::vector<std::pair<std::string, LatencyHistogram::Snapshot>>
  histogramValues() const {
    std::lock_guard<std::mutex> Guard(Mutex);
    std::vector<std::pair<std::string, LatencyHistogram::Snapshot>> Out;
    Out.reserve(Histograms.size());
    for (const auto &[Name, H] : Histograms)
      Out.emplace_back(Name, H->snapshot());
    return Out;
  }

  void reset() {
    std::lock_guard<std::mutex> Guard(Mutex);
    for (auto &[Name, C] : Counters)
      C->reset();
    for (auto &[Name, H] : Histograms)
      H->reset();
  }

private:
  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> Histograms;
};

} // namespace obs
} // namespace janus

#endif // JANUS_OBS_METRICS_H
