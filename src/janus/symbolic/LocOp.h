//===----------------------------------------------------------------------===//
///
/// \file
/// Per-location operations and their concrete semantics.
///
/// Conflict detection with projection (paper §5.3) reasons about the
/// sequences of dependent operations a transaction applies to a single
/// shared location. This is the shared vocabulary: a `LocOp` is one
/// operation restricted to one location — a read, an absolute write, or
/// a commutative integer add (the reduction primitive). ADT operations
/// lower to per-location `LocOp`s via their abstraction specifications
/// (paper §6.1); plain shared scalars use them directly.
///
//===----------------------------------------------------------------------===//

#ifndef JANUS_SYMBOLIC_LOCOP_H
#define JANUS_SYMBOLIC_LOCOP_H

#include "janus/support/Value.h"

#include <span>
#include <string>
#include <vector>

namespace janus {
namespace symbolic {

/// Kind of a per-location operation.
enum class LocOpKind : uint8_t {
  Read,  ///< Observes the location's current value.
  Write, ///< Replaces the location's value with the operand.
  Add,   ///< Adds the integer operand to the location's integer value.
};

/// One operation projected onto a single location.
struct LocOp {
  LocOpKind Kind;
  /// Write: the stored value. Add: the integer delta. Read: unused.
  Value Operand;
  /// Read: the value observed during logging (used by training to
  /// symbolize operand/read relationships). Unused otherwise.
  Value ReadResult;

  static LocOp read(Value Observed = Value::absent()) {
    return LocOp{LocOpKind::Read, Value::absent(), std::move(Observed)};
  }
  static LocOp write(Value V) {
    return LocOp{LocOpKind::Write, std::move(V), Value::absent()};
  }
  static LocOp add(int64_t Delta) {
    return LocOp{LocOpKind::Add, Value::of(Delta), Value::absent()};
  }

  /// Operational equality ignores the logged read result: two ops are
  /// the same operation if they have the same kind and operand.
  friend bool operator==(const LocOp &A, const LocOp &B) {
    return A.Kind == B.Kind && A.Operand == B.Operand;
  }
  friend bool operator!=(const LocOp &A, const LocOp &B) {
    return !(A == B);
  }

  std::string toString() const;
};

/// A per-location operation sequence.
using LocOpSeq = std::vector<LocOp>;

/// Applies \p Op to the current value \p Cur of a location. Reads leave
/// the value unchanged; Add on a non-integer (including Absent) treats
/// the location as starting from 0 when absent and asserts otherwise,
/// matching counter ADT semantics.
Value applyLocOp(const Value &Cur, const LocOp &Op);

/// Result of evaluating a sequence on an entry value: the final value
/// and the result of each read, in order.
struct SeqEval {
  Value Final;
  std::vector<Value> Reads;
};

/// Evaluates \p Seq starting from \p Entry.
SeqEval evalSequence(const Value &Entry, std::span<const LocOp> Seq);

/// \returns "R, W(3), A(+1)"-style rendering.
std::string sequenceToString(std::span<const LocOp> Seq);

} // namespace symbolic
} // namespace janus

#endif // JANUS_SYMBOLIC_LOCOP_H
