//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic terms over input-state and parameter symbols.
///
/// Training substitutes the concrete operand values observed in mined
/// sequences by symbolic values (paper §3 step 3: "{ work+=x; work-=x; }")
/// and computes commutativity conditions as constraints over those
/// symbols. A term is one of:
///   - a constant Value;
///   - a linear integer expression  c + Σ kᵢ·sᵢ  over integer symbols;
///   - an opaque (equality-only) symbol for non-numeric values;
///   - `readPlus(i, c)`: the result of the sequence's i-th read plus an
///     integer offset — the operand pattern produced when a logged write
///     value equals a previously read value plus a constant (e.g. the
///     push/pop size updates of the JFileSync monitors).
///
/// Symbol 0 is reserved for V0, the location's value at the
/// transaction's entry state.
///
//===----------------------------------------------------------------------===//

#ifndef JANUS_SYMBOLIC_TERM_H
#define JANUS_SYMBOLIC_TERM_H

#include "janus/support/Value.h"

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

namespace janus {
namespace symbolic {

/// Identifier of a symbolic value. Symbol 0 is V0 (the entry value of
/// the location under analysis); higher ids are operand parameters.
using SymId = uint32_t;

/// The reserved symbol for the location's entry value.
inline constexpr SymId EntrySym = 0;

/// Concrete bindings for symbols, used to evaluate conditions at
/// runtime (V0 from the transaction's snapshot, parameters from the
/// matched concrete operands).
using Bindings = std::map<SymId, Value>;

/// A symbolic scalar term.
class Term {
public:
  enum class Kind : uint8_t { Const, Lin, Opaque, ReadPlus };

  /// \returns a constant term.
  static Term constant(Value V);
  /// \returns the integer symbol \p S (as a linear term).
  static Term intSym(SymId S);
  /// \returns an equality-only symbol for values of unknown type.
  static Term opaqueSym(SymId S);
  /// \returns the i-th read's result plus \p Offset.
  static Term readPlus(uint32_t ReadIdx, int64_t Offset);

  Kind kind() const { return K; }

  const Value &constValue() const {
    JANUS_ASSERT(K == Kind::Const, "not a constant term");
    return ConstVal;
  }
  SymId opaqueSymbol() const {
    JANUS_ASSERT(K == Kind::Opaque, "not an opaque symbol");
    return Opaque;
  }
  uint32_t readIndex() const {
    JANUS_ASSERT(K == Kind::ReadPlus, "not a read reference");
    return ReadIdx;
  }
  int64_t readOffset() const {
    JANUS_ASSERT(K == Kind::ReadPlus, "not a read reference");
    return Base;
  }

  /// \returns whether this term is an integer-valued expression
  /// (Lin, or an integer constant).
  bool isNumeric() const {
    return K == Kind::Lin || (K == Kind::Const && ConstVal.isInt());
  }

  /// Adds an integer constant. \returns nullopt when the term is not
  /// numeric and not a read reference.
  std::optional<Term> plusConst(int64_t C) const;

  /// Adds two numeric terms. \returns nullopt on type mismatch.
  static std::optional<Term> add(const Term &A, const Term &B);

  /// \returns the negation of a numeric term, or nullopt.
  std::optional<Term> negated() const;

  /// Decides equality of two fully resolved terms (no ReadPlus):
  ///  - returns true/false when decidable syntactically;
  ///  - returns nullopt when the answer depends on symbol values.
  static std::optional<bool> staticallyEqual(const Term &A, const Term &B);

  /// Structural equality (same representation).
  friend bool operator==(const Term &A, const Term &B) {
    return A.K == B.K && A.ConstVal == B.ConstVal && A.Base == B.Base &&
           A.Coefs == B.Coefs && A.Opaque == B.Opaque &&
           A.ReadIdx == B.ReadIdx;
  }
  friend bool operator!=(const Term &A, const Term &B) { return !(A == B); }

  /// Evaluates under concrete symbol bindings. \returns nullopt when a
  /// needed symbol is unbound, the term still contains a read
  /// reference, or types mismatch.
  std::optional<Value> evaluate(const Bindings &B) const;

  /// Collects the symbols this term mentions into \p Out.
  void collectSymbols(std::map<SymId, bool> &Out) const;

  /// \returns a copy with every symbol id rewritten through \p Map
  /// (read references and constants are unaffected). Used by the
  /// abstraction module for canonical renumbering and for renaming a
  /// group body's parameters to fresh ids.
  Term mapSymbols(const std::function<SymId(SymId)> &Map) const;

  /// \returns e.g. "v0 + 2*p1 - 3", "p2", "\"abc\"", "read#1+1".
  std::string toString() const;

  /// Appends a compact textual encoding to \p Out (single line; string
  /// constants are length-prefixed). Round-trips via deserialize().
  void serialize(std::string &Out) const;

  /// Parses a term starting at \p Pos (advancing it past the term).
  /// \returns nullopt on malformed input.
  static std::optional<Term> deserialize(const std::string &In, size_t &Pos);

private:
  Term() = default;

  Kind K = Kind::Const;
  Value ConstVal;                 ///< Const payload.
  int64_t Base = 0;               ///< Lin constant / ReadPlus offset.
  std::map<SymId, int64_t> Coefs; ///< Lin symbol coefficients.
  SymId Opaque = 0;               ///< Opaque symbol id.
  uint32_t ReadIdx = 0;           ///< ReadPlus read index.
};

} // namespace symbolic
} // namespace janus

#endif // JANUS_SYMBOLIC_TERM_H
