#include "janus/symbolic/Term.h"

using namespace janus;
using namespace janus::symbolic;

Term Term::constant(Value V) {
  Term T;
  if (V.isInt()) {
    // Canonicalize integer constants as linear terms so arithmetic and
    // equality reasoning treat 3 and (Lin 3) identically.
    T.K = Kind::Lin;
    T.Base = V.asInt();
    return T;
  }
  T.K = Kind::Const;
  T.ConstVal = std::move(V);
  return T;
}

Term Term::intSym(SymId S) {
  Term T;
  T.K = Kind::Lin;
  T.Coefs[S] = 1;
  return T;
}

Term Term::opaqueSym(SymId S) {
  Term T;
  T.K = Kind::Opaque;
  T.Opaque = S;
  return T;
}

Term Term::readPlus(uint32_t ReadIdx, int64_t Offset) {
  Term T;
  T.K = Kind::ReadPlus;
  T.ReadIdx = ReadIdx;
  T.Base = Offset;
  return T;
}

std::optional<Term> Term::plusConst(int64_t C) const {
  if (C == 0)
    return *this;
  switch (K) {
  case Kind::Lin: {
    Term T = *this;
    T.Base += C;
    return T;
  }
  case Kind::ReadPlus: {
    Term T = *this;
    T.Base += C;
    return T;
  }
  case Kind::Const:
  case Kind::Opaque:
    return std::nullopt;
  }
  janusUnreachable("invalid Term kind");
}

std::optional<Term> Term::add(const Term &A, const Term &B) {
  if (A.K != Kind::Lin || B.K != Kind::Lin)
    return std::nullopt;
  Term T = A;
  T.Base += B.Base;
  for (const auto &[S, C] : B.Coefs) {
    T.Coefs[S] += C;
    if (T.Coefs[S] == 0)
      T.Coefs.erase(S);
  }
  return T;
}

std::optional<Term> Term::negated() const {
  if (K != Kind::Lin)
    return std::nullopt;
  Term T = *this;
  T.Base = -T.Base;
  for (auto &[S, C] : T.Coefs)
    C = -C;
  return T;
}

std::optional<bool> Term::staticallyEqual(const Term &A, const Term &B) {
  JANUS_ASSERT(A.K != Kind::ReadPlus && B.K != Kind::ReadPlus,
               "read references must be resolved before comparison");
  if (A.K == Kind::Lin && B.K == Kind::Lin) {
    if (A.Coefs == B.Coefs)
      return A.Base == B.Base;
    return std::nullopt; // Depends on symbol values.
  }
  if (A.K == Kind::Const && B.K == Kind::Const)
    return A.ConstVal == B.ConstVal;
  if (A.K == Kind::Opaque && B.K == Kind::Opaque) {
    if (A.Opaque == B.Opaque)
      return true;
    return std::nullopt;
  }
  // Mixed kinds: a non-integer constant can never equal an integer
  // expression; every other combination depends on the bindings.
  if ((A.K == Kind::Const && B.K == Kind::Lin) ||
      (A.K == Kind::Lin && B.K == Kind::Const))
    return false;
  return std::nullopt;
}

std::optional<Value> Term::evaluate(const Bindings &B) const {
  switch (K) {
  case Kind::Const:
    return ConstVal;
  case Kind::Lin: {
    int64_t Acc = Base;
    for (const auto &[S, C] : Coefs) {
      auto It = B.find(S);
      if (It == B.end() || !It->second.isInt())
        return std::nullopt;
      Acc += C * It->second.asInt();
    }
    return Value::of(Acc);
  }
  case Kind::Opaque: {
    auto It = B.find(Opaque);
    if (It == B.end())
      return std::nullopt;
    return It->second;
  }
  case Kind::ReadPlus:
    return std::nullopt; // Must be resolved against a read trace first.
  }
  janusUnreachable("invalid Term kind");
}

void Term::collectSymbols(std::map<SymId, bool> &Out) const {
  switch (K) {
  case Kind::Const:
  case Kind::ReadPlus:
    return;
  case Kind::Lin:
    for (const auto &[S, C] : Coefs) {
      (void)C;
      Out[S] = true;
    }
    return;
  case Kind::Opaque:
    Out[Opaque] = true;
    return;
  }
}

Term Term::mapSymbols(const std::function<SymId(SymId)> &Map) const {
  switch (K) {
  case Kind::Const:
  case Kind::ReadPlus:
    return *this;
  case Kind::Opaque: {
    Term T = *this;
    T.Opaque = Map(Opaque);
    return T;
  }
  case Kind::Lin: {
    Term T = *this;
    T.Coefs.clear();
    for (const auto &[S, C] : Coefs)
      T.Coefs[Map(S)] += C;
    return T;
  }
  }
  janusUnreachable("invalid Term kind");
}

std::string Term::toString() const {
  switch (K) {
  case Kind::Const:
    return ConstVal.toString();
  case Kind::Opaque:
    return "q" + std::to_string(Opaque);
  case Kind::ReadPlus: {
    std::string Out = "read#" + std::to_string(ReadIdx);
    if (Base > 0)
      Out += "+" + std::to_string(Base);
    else if (Base < 0)
      Out += std::to_string(Base);
    return Out;
  }
  case Kind::Lin: {
    std::string Out;
    for (const auto &[S, C] : Coefs) {
      std::string Name = S == EntrySym ? "v0" : "p" + std::to_string(S);
      if (Out.empty()) {
        if (C == 1)
          Out = Name;
        else if (C == -1)
          Out = "-" + Name;
        else
          Out = std::to_string(C) + "*" + Name;
      } else {
        if (C == 1)
          Out += " + " + Name;
        else if (C == -1)
          Out += " - " + Name;
        else if (C > 0)
          Out += " + " + std::to_string(C) + "*" + Name;
        else
          Out += " - " + std::to_string(-C) + "*" + Name;
      }
    }
    if (Out.empty())
      return std::to_string(Base);
    if (Base > 0)
      Out += " + " + std::to_string(Base);
    else if (Base < 0)
      Out += " - " + std::to_string(-Base);
    return Out;
  }
  }
  janusUnreachable("invalid Term kind");
}

// ---------------------------------------------------------------------------
// Serialization. Token grammar (space-separated, single line):
//   value  := 'A' | 'U' | 'B0' | 'B1' | 'I' <int> | 'S' <len> ':' <bytes>
//   term   := 'C' value                  (non-integer constant)
//           | 'L' <base> <k> (<sym> <coef>)*
//           | 'Q' <sym>
//           | 'P' <readIdx> <offset>
// ---------------------------------------------------------------------------

static void serializeValue(const Value &V, std::string &Out) {
  switch (V.kind()) {
  case Value::Kind::Absent:
    Out += "A";
    return;
  case Value::Kind::Unit:
    Out += "U";
    return;
  case Value::Kind::Bool:
    Out += V.asBool() ? "B1" : "B0";
    return;
  case Value::Kind::Int:
    Out += "I" + std::to_string(V.asInt());
    return;
  case Value::Kind::Str: {
    const std::string &S = V.asStr();
    JANUS_ASSERT(S.find('\n') == std::string::npos,
                 "newline in serialized string value");
    Out += "S" + std::to_string(S.size()) + ":" + S;
    return;
  }
  }
  janusUnreachable("invalid Value kind");
}

/// Skips blanks and returns the next non-blank character (0 at end).
static char peekAt(const std::string &In, size_t &Pos) {
  while (Pos < In.size() && In[Pos] == ' ')
    ++Pos;
  return Pos < In.size() ? In[Pos] : '\0';
}

static std::optional<int64_t> parseInt(const std::string &In, size_t &Pos) {
  peekAt(In, Pos);
  size_t Start = Pos;
  if (Pos < In.size() && (In[Pos] == '-' || In[Pos] == '+'))
    ++Pos;
  while (Pos < In.size() && In[Pos] >= '0' && In[Pos] <= '9')
    ++Pos;
  if (Pos == Start)
    return std::nullopt;
  return std::stoll(In.substr(Start, Pos - Start));
}

static std::optional<Value> deserializeValue(const std::string &In,
                                             size_t &Pos) {
  char C = peekAt(In, Pos);
  switch (C) {
  case 'A':
    ++Pos;
    return Value::absent();
  case 'U':
    ++Pos;
    return Value::unit();
  case 'B': {
    ++Pos;
    if (Pos >= In.size())
      return std::nullopt;
    char B = In[Pos++];
    if (B != '0' && B != '1')
      return std::nullopt;
    return Value::of(B == '1');
  }
  case 'I': {
    ++Pos;
    auto I = parseInt(In, Pos);
    if (!I)
      return std::nullopt;
    return Value::of(*I);
  }
  case 'S': {
    ++Pos;
    auto Len = parseInt(In, Pos);
    if (!Len || Pos >= In.size() || In[Pos] != ':')
      return std::nullopt;
    ++Pos;
    if (Pos + static_cast<size_t>(*Len) > In.size())
      return std::nullopt;
    std::string S = In.substr(Pos, static_cast<size_t>(*Len));
    Pos += static_cast<size_t>(*Len);
    return Value::of(std::move(S));
  }
  default:
    return std::nullopt;
  }
}

void Term::serialize(std::string &Out) const {
  switch (K) {
  case Kind::Const:
    Out += "C ";
    serializeValue(ConstVal, Out);
    return;
  case Kind::Lin: {
    Out += "L " + std::to_string(Base) + " " + std::to_string(Coefs.size());
    for (const auto &[S, C] : Coefs)
      Out += " " + std::to_string(S) + " " + std::to_string(C);
    return;
  }
  case Kind::Opaque:
    Out += "Q " + std::to_string(Opaque);
    return;
  case Kind::ReadPlus:
    Out += "P " + std::to_string(ReadIdx) + " " + std::to_string(Base);
    return;
  }
  janusUnreachable("invalid Term kind");
}

std::optional<Term> Term::deserialize(const std::string &In, size_t &Pos) {
  char C = peekAt(In, Pos);
  switch (C) {
  case 'C': {
    ++Pos;
    auto V = deserializeValue(In, Pos);
    if (!V)
      return std::nullopt;
    return Term::constant(std::move(*V));
  }
  case 'L': {
    ++Pos;
    auto Base = parseInt(In, Pos);
    auto Count = parseInt(In, Pos);
    if (!Base || !Count || *Count < 0)
      return std::nullopt;
    Term T;
    T.K = Kind::Lin;
    T.Base = *Base;
    for (int64_t I = 0; I != *Count; ++I) {
      auto Sym = parseInt(In, Pos);
      auto Coef = parseInt(In, Pos);
      if (!Sym || !Coef)
        return std::nullopt;
      T.Coefs[static_cast<SymId>(*Sym)] = *Coef;
    }
    return T;
  }
  case 'Q': {
    ++Pos;
    auto Sym = parseInt(In, Pos);
    if (!Sym)
      return std::nullopt;
    return Term::opaqueSym(static_cast<SymId>(*Sym));
  }
  case 'P': {
    ++Pos;
    auto Idx = parseInt(In, Pos);
    auto Off = parseInt(In, Pos);
    if (!Idx || !Off)
      return std::nullopt;
    return Term::readPlus(static_cast<uint32_t>(*Idx), *Off);
  }
  default:
    return std::nullopt;
  }
}
