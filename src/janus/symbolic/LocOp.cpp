#include "janus/symbolic/LocOp.h"

using namespace janus;
using namespace janus::symbolic;

std::string LocOp::toString() const {
  switch (Kind) {
  case LocOpKind::Read:
    return "R";
  case LocOpKind::Write:
    return "W(" + Operand.toString() + ")";
  case LocOpKind::Add: {
    int64_t D = Operand.asInt();
    return "A(" + std::string(D >= 0 ? "+" : "") + std::to_string(D) + ")";
  }
  }
  janusUnreachable("invalid LocOpKind");
}

Value symbolic::applyLocOp(const Value &Cur, const LocOp &Op) {
  switch (Op.Kind) {
  case LocOpKind::Read:
    return Cur;
  case LocOpKind::Write:
    return Op.Operand;
  case LocOpKind::Add: {
    // Counters start from 0 when the location is still unset.
    int64_t Base = Cur.isAbsent() ? 0 : Cur.asInt();
    return Value::of(Base + Op.Operand.asInt());
  }
  }
  janusUnreachable("invalid LocOpKind");
}

SeqEval symbolic::evalSequence(const Value &Entry,
                               std::span<const LocOp> Seq) {
  SeqEval Out{Entry, {}};
  for (const LocOp &Op : Seq) {
    if (Op.Kind == LocOpKind::Read)
      Out.Reads.push_back(Out.Final);
    Out.Final = applyLocOp(Out.Final, Op);
  }
  return Out;
}

std::string symbolic::sequenceToString(std::span<const LocOp> Seq) {
  std::string Out;
  for (size_t I = 0, E = Seq.size(); I != E; ++I) {
    if (I)
      Out += ", ";
    Out += Seq[I].toString();
  }
  return Out;
}
