#include "janus/symbolic/Condition.h"

using namespace janus;
using namespace janus::symbolic;

void Condition::requireEqual(const Term &L, const Term &R) {
  if (St == State::Never)
    return;
  if (auto Known = Term::staticallyEqual(L, R)) {
    if (!*Known) {
      St = State::Never;
      Atoms.clear();
    }
    return;
  }
  for (const EqAtom &A : Atoms)
    if ((A.L == L && A.R == R) || (A.L == R && A.R == L))
      return;
  Atoms.push_back(EqAtom{L, R});
  St = State::Conditional;
}

std::optional<bool> Condition::evaluate(const Bindings &B) const {
  if (St == State::Never)
    return false;
  for (const EqAtom &A : Atoms) {
    std::optional<Value> L = A.L.evaluate(B);
    std::optional<Value> R = A.R.evaluate(B);
    if (!L || !R)
      return std::nullopt;
    if (*L != *R)
      return false;
  }
  return true;
}

void Condition::collectSymbols(std::map<SymId, bool> &Out) const {
  for (const EqAtom &A : Atoms) {
    A.L.collectSymbols(Out);
    A.R.collectSymbols(Out);
  }
}

std::string Condition::toString() const {
  if (St == State::Valid)
    return "true";
  if (St == State::Never)
    return "false";
  std::string Out;
  for (size_t I = 0, E = Atoms.size(); I != E; ++I) {
    if (I)
      Out += " && ";
    Out += Atoms[I].toString();
  }
  return Out;
}

void Condition::serialize(std::string &Out) const {
  switch (St) {
  case State::Valid:
    Out += "V";
    return;
  case State::Never:
    Out += "N";
    return;
  case State::Conditional:
    Out += "C " + std::to_string(Atoms.size());
    for (const EqAtom &A : Atoms) {
      Out += " ";
      A.L.serialize(Out);
      Out += " ";
      A.R.serialize(Out);
    }
    return;
  }
  janusUnreachable("invalid Condition state");
}

std::optional<Condition> Condition::deserialize(const std::string &In,
                                                size_t &Pos) {
  while (Pos < In.size() && In[Pos] == ' ')
    ++Pos;
  if (Pos >= In.size())
    return std::nullopt;
  char C = In[Pos];
  if (C == 'V') {
    ++Pos;
    return Condition::valid();
  }
  if (C == 'N') {
    ++Pos;
    return Condition::never();
  }
  if (C != 'C')
    return std::nullopt;
  ++Pos;
  // Parse the atom count.
  while (Pos < In.size() && In[Pos] == ' ')
    ++Pos;
  size_t Start = Pos;
  while (Pos < In.size() && In[Pos] >= '0' && In[Pos] <= '9')
    ++Pos;
  if (Pos == Start)
    return std::nullopt;
  size_t Count = static_cast<size_t>(std::stoull(In.substr(Start, Pos - Start)));
  Condition Out;
  Out.St = Count == 0 ? State::Valid : State::Conditional;
  for (size_t I = 0; I != Count; ++I) {
    auto L = Term::deserialize(In, Pos);
    auto R = Term::deserialize(In, Pos);
    if (!L || !R)
      return std::nullopt;
    Out.Atoms.push_back(EqAtom{std::move(*L), std::move(*R)});
  }
  return Out;
}
