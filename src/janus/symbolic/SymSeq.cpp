#include "janus/symbolic/SymSeq.h"

using namespace janus;
using namespace janus::symbolic;

std::string SymLocOp::toString() const {
  switch (Kind) {
  case LocOpKind::Read:
    return "R";
  case LocOpKind::Write:
    return "W(" + Operand.toString() + ")";
  case LocOpKind::Add:
    return "A(" + Operand.toString() + ")";
  }
  janusUnreachable("invalid LocOpKind");
}

/// Resolves read references in \p Operand against the reads produced so
/// far by the same sequence.
static std::optional<Term> resolveOperand(const Term &Operand,
                                          const std::vector<Term> &Reads) {
  if (Operand.kind() != Term::Kind::ReadPlus)
    return Operand;
  uint32_t Idx = Operand.readIndex();
  if (Idx >= Reads.size())
    return std::nullopt; // Reference to a read that has not happened.
  return Reads[Idx].plusConst(Operand.readOffset());
}

std::optional<SymSeqEval> symbolic::evalSymbolic(const Term &Entry,
                                                 std::span<const SymLocOp> Seq) {
  SymSeqEval Out{Entry, {}};
  for (const SymLocOp &Op : Seq) {
    switch (Op.Kind) {
    case LocOpKind::Read:
      Out.Reads.push_back(Out.Final);
      break;
    case LocOpKind::Write: {
      std::optional<Term> T = resolveOperand(Op.Operand, Out.Reads);
      if (!T)
        return std::nullopt;
      Out.Final = *T;
      break;
    }
    case LocOpKind::Add: {
      std::optional<Term> T = resolveOperand(Op.Operand, Out.Reads);
      if (!T)
        return std::nullopt;
      std::optional<Term> Sum = Term::add(Out.Final, *T);
      if (!Sum)
        return std::nullopt; // Non-numeric addition.
      Out.Final = *Sum;
      break;
    }
    }
  }
  return Out;
}

std::optional<Condition>
symbolic::commutativityCondition(std::span<const SymLocOp> A,
                                 std::span<const SymLocOp> B,
                                 ChecksSpec Checks) {
  // Pick the entry term's type: numeric if either sequence performs
  // arithmetic on it (an Add, or a write of "previous read ± offset"),
  // otherwise equality-only.
  auto UsesArithmetic = [](std::span<const SymLocOp> Seq) {
    for (const SymLocOp &Op : Seq) {
      if (Op.Kind == LocOpKind::Add)
        return true;
      if (Op.Kind == LocOpKind::Write &&
          Op.Operand.kind() == Term::Kind::ReadPlus &&
          Op.Operand.readOffset() != 0)
        return true;
    }
    return false;
  };
  Term V0 = (UsesArithmetic(A) || UsesArithmetic(B))
                ? Term::intSym(EntrySym)
                : Term::opaqueSym(EntrySym);

  std::optional<SymSeqEval> AloneA = evalSymbolic(V0, A);
  std::optional<SymSeqEval> AloneB = evalSymbolic(V0, B);
  if (!AloneA || !AloneB)
    return std::nullopt;
  // Order A·B: A runs first, then B (and vice versa).
  std::optional<SymSeqEval> BAfterA = evalSymbolic(AloneA->Final, B);
  std::optional<SymSeqEval> AAfterB = evalSymbolic(AloneB->Final, A);
  if (!BAfterA || !AAfterB)
    return std::nullopt;

  Condition Cond = Condition::valid();

  // COMMUTE: identical final values in both orders.
  if (Checks.Commute)
    Cond.requireEqual(BAfterA->Final, AAfterB->Final);

  // SAMEREAD: each read of A yields the same value whether A's prefix
  // runs on the entry state or after B; symmetrically for B's reads.
  if (Checks.SameReadA) {
    JANUS_ASSERT(AloneA->Reads.size() == AAfterB->Reads.size(),
                 "read count must be order-independent");
    for (size_t I = 0, E = AloneA->Reads.size(); I != E; ++I)
      Cond.requireEqual(AloneA->Reads[I], AAfterB->Reads[I]);
  }
  if (Checks.SameReadB) {
    JANUS_ASSERT(AloneB->Reads.size() == BAfterA->Reads.size(),
                 "read count must be order-independent");
    for (size_t I = 0, E = AloneB->Reads.size(); I != E; ++I)
      Cond.requireEqual(AloneB->Reads[I], BAfterA->Reads[I]);
  }
  return Cond;
}

std::string symbolic::symSeqToString(std::span<const SymLocOp> Seq) {
  std::string Out;
  for (size_t I = 0, E = Seq.size(); I != E; ++I) {
    if (I)
      Out += ", ";
    Out += Seq[I].toString();
  }
  return Out;
}
