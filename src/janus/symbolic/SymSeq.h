//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic per-location sequences and commutativity-condition
/// computation (the offline half of paper §5.1 step 3).
///
/// A symbolic sequence is a per-location sequence whose operands are
/// terms over the entry-value symbol V0 and operand parameters. Given
/// two such sequences, `commutativityCondition` symbolically evaluates
/// both execution orders and emits the condition under which Figure 8's
/// CONFLICT finds no conflict:
///   - the final values of both orders coincide (the COMMUTE test), and
///   - every read of each sequence yields the same value whether or not
///     the other sequence executed first (the SAMEREAD tests).
/// Consistency relaxations (paper §5.3) drop the corresponding checks.
///
//===----------------------------------------------------------------------===//

#ifndef JANUS_SYMBOLIC_SYMSEQ_H
#define JANUS_SYMBOLIC_SYMSEQ_H

#include "janus/symbolic/Condition.h"
#include "janus/symbolic/LocOp.h"
#include "janus/symbolic/Term.h"

#include <span>
#include <vector>

namespace janus {
namespace symbolic {

/// One symbolic per-location operation. The operand term may reference
/// the results of the sequence's own earlier reads (Term::readPlus).
struct SymLocOp {
  LocOpKind Kind = LocOpKind::Read;
  Term Operand = Term::constant(Value::absent()); ///< Unused for reads.

  static SymLocOp read() { return SymLocOp{}; }
  static SymLocOp write(Term T) {
    return SymLocOp{LocOpKind::Write, std::move(T)};
  }
  static SymLocOp add(Term T) {
    return SymLocOp{LocOpKind::Add, std::move(T)};
  }

  friend bool operator==(const SymLocOp &A, const SymLocOp &B) {
    if (A.Kind != B.Kind)
      return false;
    return A.Kind == LocOpKind::Read || A.Operand == B.Operand;
  }
  friend bool operator!=(const SymLocOp &A, const SymLocOp &B) {
    return !(A == B);
  }

  std::string toString() const;
};

/// A symbolic per-location sequence.
using SymLocSeq = std::vector<SymLocOp>;

/// Result of symbolic evaluation: the final value term and one term per
/// read, in order.
struct SymSeqEval {
  Term Final;
  std::vector<Term> Reads;
};

/// Symbolically evaluates \p Seq starting from the entry term
/// \p Entry. \returns nullopt when the sequence cannot be reasoned
/// about symbolically (e.g. Add applied to a non-numeric term) — the
/// caller then skips caching and relies on the runtime fallback.
std::optional<SymSeqEval> evalSymbolic(const Term &Entry,
                                       std::span<const SymLocOp> Seq);

/// Which of Figure 8's checks to perform; relaxation specs clear flags
/// (tolerate-RAW drops the SAMEREAD checks, tolerate-WAW drops the
/// final COMMUTE test — paper §5.3).
struct ChecksSpec {
  bool SameReadA = true; ///< Intermediate reads of the first sequence.
  bool SameReadB = true; ///< Intermediate reads of the second sequence.
  bool Commute = true;   ///< Final-state equality.
};

/// Computes the condition under which \p A and \p B commute (in the
/// CONFLICT sense of Figure 8) on a location whose entry value is V0.
/// \returns nullopt when symbolic evaluation is impossible.
std::optional<Condition> commutativityCondition(std::span<const SymLocOp> A,
                                                std::span<const SymLocOp> B,
                                                ChecksSpec Checks = {});

/// Renders a symbolic sequence, e.g. "A(p1), A(-p1)".
std::string symSeqToString(std::span<const SymLocOp> Seq);

} // namespace symbolic
} // namespace janus

#endif // JANUS_SYMBOLIC_SYMSEQ_H
