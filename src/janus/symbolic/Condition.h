//===----------------------------------------------------------------------===//
///
/// \file
/// Commutativity conditions: conjunctions of symbolic equality atoms.
///
/// A condition is the "designated input states" of paper §3 step 3: the
/// constraint over the entry value (V0) and the symbolized operand
/// parameters under which a pair of sequences commutes. Training
/// computes conditions offline; production evaluates them against
/// concrete bindings obtained from the matched sequences and the
/// transaction's snapshot — a cheap check, keeping runtime overhead on a
/// par with write-set detection.
///
//===----------------------------------------------------------------------===//

#ifndef JANUS_SYMBOLIC_CONDITION_H
#define JANUS_SYMBOLIC_CONDITION_H

#include "janus/symbolic/Term.h"

#include <vector>

namespace janus {
namespace symbolic {

/// An equality constraint between two symbolic terms.
struct EqAtom {
  Term L, R;

  std::string toString() const { return L.toString() + " == " + R.toString(); }
};

/// A conjunction of equality atoms, with Valid (always true) and Never
/// (statically false) short-circuits.
class Condition {
public:
  enum class State : uint8_t { Valid, Never, Conditional };

  /// \returns the always-true condition (unconditional commutativity).
  static Condition valid() { return Condition(); }

  /// \returns the always-false condition (the sequences never commute).
  static Condition never() {
    Condition C;
    C.St = State::Never;
    return C;
  }

  State state() const { return St; }
  bool isValid() const { return St == State::Valid; }
  bool isNever() const { return St == State::Never; }
  bool isConditional() const { return St == State::Conditional; }

  const std::vector<EqAtom> &atoms() const { return Atoms; }

  /// Conjoins the constraint \p L == \p R, folding statically decidable
  /// comparisons. Duplicated atoms are kept once.
  void requireEqual(const Term &L, const Term &R);

  /// Evaluates under concrete \p B. \returns nullopt when some term
  /// cannot be evaluated (unbound symbol / type mismatch) — callers
  /// treat that as "condition not established" and fall back.
  std::optional<bool> evaluate(const Bindings &B) const;

  /// Collects every symbol mentioned by the condition.
  void collectSymbols(std::map<SymId, bool> &Out) const;

  /// \returns "true", "false", or "a == b && c == d".
  std::string toString() const;

  /// Appends a compact single-line textual encoding to \p Out.
  void serialize(std::string &Out) const;

  /// Parses a condition starting at \p Pos (advancing it).
  static std::optional<Condition> deserialize(const std::string &In,
                                              size_t &Pos);

private:
  State St = State::Valid;
  std::vector<EqAtom> Atoms;
};

} // namespace symbolic
} // namespace janus

#endif // JANUS_SYMBOLIC_CONDITION_H
