//===----------------------------------------------------------------------===//
///
/// \file
/// Line-oriented local-socket frontend for janus::serve.
///
/// A thin transport over Service: one AF_UNIX stream socket, one accept
/// thread, one reader thread per connection. The protocol is plain
/// text, one request or reply per line, so a shell can drive it:
///
///     $ printf 'submit 1 0 50\nmetrics\n' | nc -U /tmp/janus.sock
///
/// Requests (client → service):
///     submit <subid> <taskindex> [deadline_ms]   queue one task
///     metrics                                    one-line metrics JSON
///     ping                                       liveness probe
///     quit                                       close the connection
///
/// Replies (service → client):
///     hello <clientid>                           greeting on connect
///     reply <subid> <status> [detail]            terminal, exactly one
///                                                per submit
///     metrics <json> | pong | err <reason>
///
/// Each connection is its own Service client id (assigned at accept),
/// so per-client admission caps and DRR fairness apply per connection.
/// Terminal replies arrive asynchronously from the scheduler thread and
/// may interleave with command responses; a per-connection write mutex
/// keeps lines whole.
///
/// The frontend does not own the Service's reply sink: the owner keeps
/// whatever sink it has and calls route() from it — replies for socket
/// clients are written to their connection, everything else falls
/// through (return false) for the owner to handle.
///
//===----------------------------------------------------------------------===//

#ifndef JANUS_SERVE_FRONTEND_H
#define JANUS_SERVE_FRONTEND_H

#include "janus/serve/Serve.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace janus {
namespace serve {

class SocketFrontend {
public:
  /// Socket-client ids start here, leaving the low range for in-process
  /// submitters (the CLI's load-generator threads).
  static constexpr uint64_t ClientIdBase = 1u << 20;

  /// \param MetricsFn produces the one-line JSON for the `metrics`
  ///        request (empty function: `err metrics-disabled`).
  SocketFrontend(Service &S, std::string SocketPath,
                 std::function<std::string()> MetricsFn = {});
  ~SocketFrontend();

  SocketFrontend(const SocketFrontend &) = delete;
  SocketFrontend &operator=(const SocketFrontend &) = delete;

  /// Binds, listens and starts the accept thread. \returns false (with
  /// the reason in \p Err) when the socket cannot be set up.
  bool start(std::string *Err = nullptr);

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Routes \p R to its socket client. \returns false when R.Client is
  /// not a socket client (the caller's sink handles it).
  bool route(const Reply &R);

  uint64_t connectionsAccepted() const { return Accepted; }

private:
  struct Conn {
    int Fd = -1;
    uint64_t ClientId = 0;
    std::mutex WriteMutex;
    std::thread Reader;
  };

  void acceptLoop();
  void readerLoop(std::shared_ptr<Conn> C);
  void handleLine(Conn &C, const std::string &Line);
  static void writeLine(Conn &C, const std::string &Line);

  Service &S;
  std::string SocketPath;
  std::function<std::string()> MetricsFn;

  int ListenFd = -1;
  std::atomic<bool> Running{false};
  std::thread Acceptor;

  std::mutex ConnMutex; ///< Guards Conns (accept vs route vs stop).
  std::map<uint64_t, std::shared_ptr<Conn>> Conns;
  uint64_t NextClientId = ClientIdBase;
  uint64_t Accepted = 0;
};

} // namespace serve
} // namespace janus

#endif // JANUS_SERVE_FRONTEND_H
