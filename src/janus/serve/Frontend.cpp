#include "janus/serve/Frontend.h"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace janus;
using namespace janus::serve;

SocketFrontend::SocketFrontend(Service &S, std::string SocketPath,
                               std::function<std::string()> MetricsFn)
    : S(S), SocketPath(std::move(SocketPath)),
      MetricsFn(std::move(MetricsFn)) {}

SocketFrontend::~SocketFrontend() { stop(); }

bool SocketFrontend::start(std::string *Err) {
  auto Fail = [&](const char *What) {
    if (Err)
      *Err = std::string(What) + ": " + std::strerror(errno);
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    return false;
  };

  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + SocketPath;
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Fail("socket");
  ::unlink(SocketPath.c_str()); // Stale socket from a previous run.
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0)
    return Fail("bind");
  if (::listen(ListenFd, 64) < 0)
    return Fail("listen");

  Running.store(true, std::memory_order_release);
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void SocketFrontend::stop() {
  if (!Running.exchange(false, std::memory_order_acq_rel)) {
    if (Acceptor.joinable())
      Acceptor.join();
    return;
  }
  // Unblock accept(); the loop sees Running==false and exits.
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
  if (Acceptor.joinable())
    Acceptor.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(SocketPath.c_str());
  }
  // Close every connection; readers see EOF and exit.
  std::vector<std::shared_ptr<Conn>> ToJoin;
  {
    std::lock_guard<std::mutex> G(ConnMutex);
    for (auto &KV : Conns) {
      ::shutdown(KV.second->Fd, SHUT_RDWR);
      ToJoin.push_back(KV.second);
    }
  }
  for (auto &C : ToJoin)
    if (C->Reader.joinable())
      C->Reader.join();
  std::lock_guard<std::mutex> G(ConnMutex);
  for (auto &KV : Conns)
    ::close(KV.second->Fd);
  Conns.clear();
}

void SocketFrontend::acceptLoop() {
  while (Running.load(std::memory_order_acquire)) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (!Running.load(std::memory_order_acquire))
        break;
      if (errno == EINTR)
        continue;
      break;
    }
    auto C = std::make_shared<Conn>();
    C->Fd = Fd;
    {
      std::lock_guard<std::mutex> G(ConnMutex);
      C->ClientId = NextClientId++;
      Conns[C->ClientId] = C;
      ++Accepted;
    }
    writeLine(*C, "hello " + std::to_string(C->ClientId));
    C->Reader = std::thread([this, C] { readerLoop(C); });
  }
}

void SocketFrontend::readerLoop(std::shared_ptr<Conn> C) {
  std::string Buffer;
  char Chunk[4096];
  for (;;) {
    ssize_t N = ::read(C->Fd, Chunk, sizeof(Chunk));
    if (N <= 0)
      break;
    Buffer.append(Chunk, static_cast<size_t>(N));
    size_t Pos;
    while ((Pos = Buffer.find('\n')) != std::string::npos) {
      std::string Line = Buffer.substr(0, Pos);
      Buffer.erase(0, Pos + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line == "quit") {
        ::shutdown(C->Fd, SHUT_RDWR);
        return;
      }
      handleLine(*C, Line);
    }
  }
  // Leave the Conn entry in place: in-flight submissions from this
  // connection still need their terminal replies routed (the writes
  // will fail harmlessly on the closed fd). stop() reaps everything.
}

void SocketFrontend::handleLine(Conn &C, const std::string &Line) {
  std::istringstream In(Line);
  std::string Cmd;
  In >> Cmd;
  if (Cmd.empty())
    return;
  if (Cmd == "ping") {
    writeLine(C, "pong");
    return;
  }
  if (Cmd == "metrics") {
    writeLine(C, MetricsFn ? "metrics " + MetricsFn()
                           : std::string("err metrics-disabled"));
    return;
  }
  if (Cmd == "submit") {
    uint64_t SubId = 0;
    uint32_t TaskIndex = 0;
    int64_t DeadlineMs = 0;
    if (!(In >> SubId >> TaskIndex)) {
      writeLine(C, "err expected: submit <subid> <taskindex> [deadline_ms]");
      return;
    }
    In >> DeadlineMs; // Optional; 0 (no deadline) when absent.
    // The terminal reply — Committed or shed Overloaded alike — arrives
    // through route(); nothing more to write here.
    S.submit(C.ClientId, SubId, TaskIndex,
             DeadlineMs > 0 ? DeadlineMs * 1000 : 0);
    return;
  }
  writeLine(C, "err unknown command: " + Cmd);
}

bool SocketFrontend::route(const Reply &R) {
  std::shared_ptr<Conn> C;
  {
    std::lock_guard<std::mutex> G(ConnMutex);
    auto It = Conns.find(R.Client);
    if (It == Conns.end())
      return R.Client >= ClientIdBase; // Gone client: swallow, still ours.
    C = It->second;
  }
  std::string Line = "reply " + std::to_string(R.SubId) + " " +
                     toString(R.Status);
  if (!R.Detail.empty())
    Line += " " + R.Detail;
  writeLine(*C, Line);
  return true;
}

void SocketFrontend::writeLine(Conn &C, const std::string &Line) {
  std::lock_guard<std::mutex> G(C.WriteMutex);
  std::string Out = Line + "\n";
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t N = ::send(C.Fd, Out.data() + Off, Out.size() - Off,
                       MSG_NOSIGNAL);
    if (N <= 0)
      return; // Client gone; terminal replies are best-effort here.
    Off += static_cast<size_t>(N);
  }
}
