//===----------------------------------------------------------------------===//
///
/// \file
/// Lock-free multi-producer single-consumer submission queue.
///
/// Vyukov's non-intrusive MPSC queue: producers link nodes onto an
/// atomically exchanged head with two wait-free stores, the single
/// consumer walks the tail. A permanently allocated stub node keeps
/// the list non-empty so neither side ever special-cases "first
/// element". The only blocking-adjacent state is the instant between a
/// producer's exchange and its Next store; the consumer detects that
/// in-flight push (tail != head but tail->Next still null) and reports
/// "empty for now" instead of spinning — the service's scheduler loop
/// simply comes back on its next tick.
///
/// push() is safe from any number of threads concurrently; pop() must
/// only ever be called from one thread at a time (the scheduler). The
/// approximate size counter feeds admission control: it may transiently
/// over-count by in-flight pushes, which errs toward shedding — the
/// safe direction under overload.
///
//===----------------------------------------------------------------------===//

#ifndef JANUS_SERVE_SUBMISSIONQUEUE_H
#define JANUS_SERVE_SUBMISSIONQUEUE_H

#include <atomic>
#include <cstddef>
#include <utility>

namespace janus {
namespace serve {

template <typename T> class MpscQueue {
public:
  MpscQueue() : Head(&Stub), Tail(&Stub) {}

  MpscQueue(const MpscQueue &) = delete;
  MpscQueue &operator=(const MpscQueue &) = delete;

  ~MpscQueue() {
    // Single-threaded by now (no live producers): drain and free.
    T Discard;
    while (pop(Discard))
      ;
  }

  /// Enqueues \p Item. Wait-free for producers: one allocation, one
  /// exchange, one store.
  void push(T Item) {
    Node *N = new Node(std::move(Item));
    N->Next.store(nullptr, std::memory_order_relaxed);
    // Publish the node as the new head; the previous head's Next link
    // is the handover the consumer follows.
    Node *Prev = Head.exchange(N, std::memory_order_acq_rel);
    Prev->Next.store(N, std::memory_order_release);
    Count.fetch_add(1, std::memory_order_relaxed);
  }

  /// Dequeues into \p Out. \returns false when the queue is empty *or*
  /// a producer is mid-push (its node will be visible on a later call).
  /// Single consumer only.
  bool pop(T &Out) {
    Node *TailN = Tail;
    Node *Next = TailN->Next.load(std::memory_order_acquire);
    if (TailN == &Stub) {
      // Skip the stub to the first real node.
      if (!Next)
        return false; // Truly empty.
      Tail = Next;
      TailN = Next;
      Next = Next->Next.load(std::memory_order_acquire);
    }
    if (Next) {
      Tail = Next;
      Out = std::move(TailN->Item);
      delete TailN;
      Count.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    // TailN is the last linked node. If it is also the head, the queue
    // has exactly one element — re-insert the stub behind it so we can
    // hand the node out while keeping the list non-empty.
    if (TailN != Head.load(std::memory_order_acquire))
      return false; // A producer is mid-push; retry later.
    pushStub();
    Next = TailN->Next.load(std::memory_order_acquire);
    if (!Next)
      return false; // Another producer overtook the stub; retry later.
    Tail = Next;
    Out = std::move(TailN->Item);
    delete TailN;
    Count.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Approximate element count (may over-count by in-flight pushes).
  size_t sizeApprox() const {
    ptrdiff_t N = Count.load(std::memory_order_relaxed);
    return N > 0 ? static_cast<size_t>(N) : 0;
  }

private:
  struct Node {
    Node() = default;
    explicit Node(T I) : Item(std::move(I)) {}
    std::atomic<Node *> Next{nullptr};
    T Item{};
  };

  void pushStub() {
    Stub.Next.store(nullptr, std::memory_order_relaxed);
    Node *Prev = Head.exchange(&Stub, std::memory_order_acq_rel);
    Prev->Next.store(&Stub, std::memory_order_release);
  }

  std::atomic<Node *> Head;       ///< Producers exchange onto this.
  Node *Tail;                     ///< Consumer-only.
  Node Stub;                      ///< Permanent sentinel.
  std::atomic<ptrdiff_t> Count{0};
};

} // namespace serve
} // namespace janus

#endif // JANUS_SERVE_SUBMISSIONQUEUE_H
