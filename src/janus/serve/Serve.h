//===----------------------------------------------------------------------===//
///
/// \file
/// janus::serve — a long-running, overload-safe transaction service.
///
/// The batch API (core::Janus::run*) assumes someone hands it a task
/// vector and waits. A deployment at the ROADMAP's scale instead sees
/// an unbounded stream of submissions from many clients, and must stay
/// *live* when optimism stops paying off: retry storms, hot shards,
/// stuck lanes, and offered load beyond capacity. This service wraps
/// one Janus instance with the four robustness mechanisms that turn
/// "runs fast when lucky" into "degrades instead of collapsing":
///
///  1. **Admission control & backpressure.** Producers push into a
///     lock-free MPSC queue (SubmissionQueue.h) with a hard cap; each
///     client additionally has a pending-work cap, and the scheduler
///     serves client lanes by deficit round-robin so one chatty client
///     cannot starve the rest. When the queue is full, a lane is full,
///     the watchdog's pressure gate is up, or the escalation level has
///     hit forced-serial, new work is *shed* with a structured
///     `Overloaded` reply instead of queueing unboundedly.
///
///  2. **Deadlines & cancellation.** A submission may carry a
///     deadline. It is propagated into the engines through a
///     per-batch `resilience::CancellationTable` consulted at attempt
///     boundaries and inside backoff waits; expired work surfaces as a
///     `Deadline` TaskFailure whose commit slot is filled by the
///     existing placeholder mechanism, so the dense clock (Theorem
///     4.1) and ordered-mode handoff are untouched. Already-expired
///     submissions are failed at dequeue without burning an engine
///     attempt.
///
///  3. **Watchdog & stall detection.** A supervisor thread samples the
///     shared `PressureBoard` commit tick. No progress while a batch
///     is in flight escalates the contention-manager ladder
///     (EscalationLevel 0→1→2: halve the speculative budget, then
///     force serial fallback on first abort); progress decays it. The
///     same thread computes a windowed serial-fallback share that
///     raises the admission shed gate when the engine is mostly
///     running pessimistically — more intake would only deepen the
///     hole.
///
///  4. **Graceful drain.** requestStop() (or the external stop flag,
///     typically set by a SIGTERM/SIGINT handler — it is just an
///     atomic store) stops admission; the scheduler drains queued
///     work normally. A hard drain deadline, enforced by the
///     watchdog, cancels the in-flight batch via the table's global
///     token (Shutdown) and fails the rest with `Cancelled` replies,
///     so shutdown is bounded in time and every submission still gets
///     exactly one terminal reply.
///
/// The whole service runs under the FaultPlan chaos grammar extended
/// with `(client, submission)` coordinates: `shed@C:S` fails admission
/// deterministically, and `abort/throw/delay@C:S` are translated into
/// task-coordinate clauses for the batch the submission lands in.
///
/// Threading model: any number of producer threads call submit();
/// serve() runs the scheduler in its caller's thread and owns the
/// Janus instance for its duration; one internal watchdog thread
/// touches only atomics (and the active batch's cancellation table,
/// under a mutex). The reply sink is invoked under a mutex — from
/// producer threads for sheds, from the scheduler for everything else.
///
//===----------------------------------------------------------------------===//

#ifndef JANUS_SERVE_SERVE_H
#define JANUS_SERVE_SERVE_H

#include "janus/core/Janus.h"
#include "janus/resilience/Cancellation.h"
#include "janus/resilience/ContentionManager.h"
#include "janus/resilience/FaultPlan.h"
#include "janus/serve/SubmissionQueue.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace janus {
namespace serve {

/// Terminal disposition of one submission. Every accepted or rejected
/// submission receives exactly one reply.
enum class ReplyStatus : uint8_t {
  Committed,  ///< Transaction committed; effects are in the state.
  Failed,     ///< Task body kept throwing; placeholder-committed.
  Deadline,   ///< Deadline expired (before or during execution).
  Overloaded, ///< Shed at admission (backpressure / chaos plan).
  Cancelled,  ///< Shutdown cancelled it (drain hard deadline).
};

const char *toString(ReplyStatus S);

/// One unit of work submitted by a client: run TaskPool[TaskIndex].
struct Submission {
  uint64_t Client = 0;   ///< Client id (frontend connection, thread...).
  uint64_t SubId = 0;    ///< Client-chosen correlation id.
  uint32_t Seq = 0;      ///< 1-based per-client sequence (chaos coord).
  uint32_t TaskIndex = 0;///< Index into the service's task pool.
  int64_t DeadlineUs = 0;///< Absolute (CancelToken::nowUs), 0 = none.
};

/// The terminal reply streamed back for one submission.
struct Reply {
  uint64_t Client = 0;
  uint64_t SubId = 0;
  ReplyStatus Status = ReplyStatus::Committed;
  std::string Detail; ///< Failure reason / shed cause; empty on commit.
};

/// Service tuning. Defaults suit tests; the CLI exposes the knobs.
struct ServeConfig {
  /// Max submissions per engine batch.
  uint32_t BatchMax = 32;
  /// Global submission-queue cap; admissions beyond it are shed.
  uint32_t QueueCap = 1024;
  /// Per-client pending cap (queued + in batch); beyond it: shed.
  uint32_t LaneCap = 256;
  /// Deficit round-robin quantum (submissions per lane per pass).
  uint32_t DrrQuantum = 4;
  /// Run batches in task order (runInOrder) instead of out-of-order.
  bool Ordered = false;
  /// Audit every recorded batch trace (requires RecordTrace on the
  /// Janus config); violations are counted in the report.
  bool Audit = false;
  /// Drain hard deadline: after requestStop(), in-flight work is
  /// cancelled and the backlog failed once this much time has passed.
  int64_t DrainHardUs = 2000000;
  /// Watchdog sampling period.
  int64_t WatchdogPeriodUs = 20000;
  /// No commit progress for this long (batch in flight) escalates the
  /// contention-manager ladder one level.
  int64_t StallEscalateUs = 200000;
  /// Shed gate: raise when serial fallbacks exceed this share of
  /// commits over the watchdog window (the engine has gone mostly
  /// pessimistic). <= 0 disables the gate.
  double ShedSerialShare = 0.5;
  /// External stop flag (e.g. set by a signal handler); polled by the
  /// scheduler. nullptr = requestStop() only.
  const std::atomic<bool> *StopFlag = nullptr;
  /// Periodic live metrics dump: every this many µs the scheduler
  /// hands Observer::metricsJson() to MetricsSink. 0 = off.
  int64_t MetricsPeriodUs = 0;
  std::function<void(const std::string &)> MetricsSink;
  /// Flight-recorder dump hook. Invoked on the scheduler thread with
  /// no batch in flight (the engine quiesced), when a trigger fires:
  /// DumpFlag ("sigusr2"), a watchdog escalation ("watchdog"), or an
  /// unclean batch audit ("audit-violation"). The argument names the
  /// trigger; the callback typically snapshots the recorder to a
  /// `.jrec` file. Unset = no dumps.
  std::function<void(const char *Reason)> DumpFn;
  /// External dump request (e.g. set by a SIGUSR2 handler); polled by
  /// the scheduler between batches and cleared when consumed.
  /// nullptr = triggered dumps only.
  std::atomic<bool> *DumpFlag = nullptr;
};

/// What happened over one serve() lifetime. Reply accounting is the
/// liveness invariant: clean() demands every submission got exactly
/// one terminal reply and every audit came back clean.
struct ServeReport {
  uint64_t Received = 0;         ///< submit() calls.
  uint64_t Sheds = 0;            ///< Overloaded at admission.
  uint64_t Committed = 0;
  uint64_t Failed = 0;           ///< Exception-failed tasks.
  uint64_t DeadlineFailures = 0; ///< Deadline replies (pre-drop + engine).
  uint64_t DrainedInflight = 0;  ///< Cancelled by the drain hard stop.
  uint64_t WatchdogEscalations = 0;
  uint64_t Batches = 0;
  uint64_t Replies = 0;          ///< Terminal replies sent.
  uint64_t AuditViolations = 0;  ///< Batches whose audit was unclean.
  bool DrainedInTime = true;     ///< Drain beat the hard deadline.

  bool clean() const {
    return Replies == Received && AuditViolations == 0;
  }
};

/// The long-running service. Construct, setReplySink(), start
/// producers calling submit(), run serve() (blocking), requestStop()
/// to drain. See the file header for the model.
class Service {
public:
  /// \param J configured Janus instance (trained, objects registered).
  ///        The service owns its fault plan and cancellation pointer
  ///        between serve() start and return.
  /// \param TaskPool submissions name tasks by index into this pool
  ///        (out-of-range indexes are taken modulo the pool size).
  Service(core::Janus &J, std::vector<stm::TaskFn> TaskPool,
          ServeConfig Config);
  ~Service();

  Service(const Service &) = delete;
  Service &operator=(const Service &) = delete;

  /// Sink for terminal replies. Invoked under an internal mutex; keep
  /// it fast. Must be set before serve() if replies matter.
  void setReplySink(std::function<void(const Reply &)> Sink);

  /// Thread-safe admission. \returns true when queued, false when shed
  /// (an Overloaded reply has already been emitted). \p DeadlineRelUs
  /// is relative to now; 0 = no deadline.
  bool submit(uint64_t Client, uint64_t SubId, uint32_t TaskIndex,
              int64_t DeadlineRelUs = 0);

  /// Runs the scheduler loop in the calling thread until stop + drain
  /// complete. Starts (and joins) the watchdog thread.
  void serve();

  /// Stops admission and begins the drain. Thread-safe; callable from
  /// a signal handler's flag-polling thread or any producer.
  void requestStop();

  bool stopping() const { return Stopping.load(std::memory_order_acquire); }

  /// Live pressure signals (shared with the contention manager).
  resilience::PressureBoard &pressure() { return Board; }

  /// Stable snapshot; call after serve() returns for final numbers.
  ServeReport report() const;

  /// Per-client / per-lane rollups as a JSON object (schema_version'd;
  /// see DESIGN.md §12): per client the admission sequence, pending
  /// count, and terminal-outcome tallies; per lane the queue depth
  /// snapshotted at the last batch boundary; plus the global queue
  /// depth, watchdog escalation level, and shed-gate state.
  /// Thread-safe; composable into the metrics socket reply.
  std::string rollupJson() const;

private:
  struct Lane {
    std::deque<Submission> Q;
    uint32_t Deficit = 0;
  };

  struct ClientAdmission {
    uint32_t Seq = 0;     ///< Submissions seen (chaos coordinate).
    uint32_t Pending = 0; ///< Queued or in the current batch.
    // Per-client terminal-outcome rollups (metrics schema v3).
    uint64_t Sheds = 0;
    uint64_t Committed = 0;
    uint64_t Failed = 0;
    uint64_t Deadlines = 0;
    uint64_t Cancelled = 0;
  };

  /// Emits the terminal reply for \p R (exactly once per submission).
  void replyOut(const Reply &R);
  /// Decrements the client's pending count after a terminal reply for
  /// an *admitted* submission.
  void admissionDone(uint64_t Client);
  /// Sheds \p Client's submission \p SubId: counts it and emits the
  /// Overloaded reply.
  void shed(uint64_t Client, uint64_t SubId, const char *Why);
  /// Tallies a terminal outcome into the client's rollup counters.
  void tallyClient(uint64_t Client, ReplyStatus S);

  /// Moves everything the MPSC queue currently holds into the lanes.
  void drainQueueIntoLanes();
  /// Builds the next batch by deficit round-robin, pre-dropping
  /// submissions whose deadline already expired. \returns batch size.
  size_t buildBatch(std::vector<Submission> &Batch);
  /// Runs one batch through the engine and replies to each member.
  void runBatch(std::vector<Submission> &Batch);
  /// Fails every queued submission with a Cancelled reply (drain hard
  /// deadline passed).
  void failBacklog();

  /// Admitted-but-unreplied submissions (the drain-completion
  /// predicate).
  uint64_t pendingTotal();

  void watchdogLoop();

  core::Janus &J;
  std::vector<stm::TaskFn> TaskPool;
  ServeConfig Config;
  /// The service-level chaos plan (client-coordinate clauses included),
  /// captured from the Janus config at construction.
  resilience::FaultPlan ServicePlan;
  resilience::PressureBoard Board;

  MpscQueue<Submission> Queue;
  std::map<uint64_t, Lane> Lanes; ///< Scheduler-thread only.

  mutable std::mutex AdmMutex; ///< Guards Admissions.
  std::map<uint64_t, ClientAdmission> Admissions;

  /// Lane queue depths, snapshotted by the scheduler at batch
  /// boundaries so rollupJson() never touches the scheduler-private
  /// Lanes map. Guarded by RollupMutex.
  mutable std::mutex RollupMutex;
  std::map<uint64_t, size_t> LaneDepths;

  std::mutex ReplyMutex; ///< Guards Sink + reply counters.
  std::function<void(const Reply &)> Sink;

  std::atomic<bool> Stopping{false};
  std::atomic<bool> Done{false};       ///< serve() finished (watchdog exit).
  std::atomic<bool> HardCancelled{false};
  std::atomic<int64_t> DrainStartUs{0};
  std::atomic<bool> ShedGate{false};
  std::atomic<bool> BatchInFlight{false};
  /// Watchdog → scheduler dump handoff: the watchdog only sets the
  /// flag; the scheduler consumes it between batches (quiesced) and
  /// invokes DumpFn("watchdog").
  std::atomic<bool> WantDump{false};

  /// The in-flight batch's cancellation table, for the watchdog's
  /// drain hard stop. Guarded by ActiveMutex (set/cleared by the
  /// scheduler, cancelled by the watchdog).
  std::mutex ActiveMutex;
  resilience::CancellationTable *ActiveTable = nullptr;

  std::thread Watchdog;

  // Report counters. Relaxed atomics: read precisely only after
  // serve() returns.
  std::atomic<uint64_t> Received{0}, Sheds{0}, CommittedN{0}, FailedN{0},
      DeadlineFailures{0}, DrainedInflight{0}, WatchdogEscalations{0},
      Batches{0}, Replies{0}, AuditViolations{0};

  // Pre-resolved obs counters (nullptr when obs is disabled).
  obs::Counter *CtrSubmissions = nullptr;
  obs::Counter *CtrSheds = nullptr;
  obs::Counter *CtrCommitted = nullptr;
  obs::Counter *CtrDeadline = nullptr;
  obs::Counter *CtrEscalations = nullptr;
  obs::Counter *CtrDrained = nullptr;
  obs::Counter *CtrBatches = nullptr;
};

} // namespace serve
} // namespace janus

#endif // JANUS_SERVE_SERVE_H
