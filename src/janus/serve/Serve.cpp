#include "janus/serve/Serve.h"

#include "janus/analysis/Auditor.h"
#include "janus/support/Assert.h"
#include "janus/support/Json.h"

#include <algorithm>
#include <chrono>

using namespace janus;
using namespace janus::serve;

using resilience::CancelReason;
using resilience::CancelToken;

const char *janus::serve::toString(ReplyStatus S) {
  switch (S) {
  case ReplyStatus::Committed:
    return "committed";
  case ReplyStatus::Failed:
    return "failed";
  case ReplyStatus::Deadline:
    return "deadline";
  case ReplyStatus::Overloaded:
    return "overloaded";
  case ReplyStatus::Cancelled:
    return "cancelled";
  }
  return "?";
}

Service::Service(core::Janus &J, std::vector<stm::TaskFn> TaskPool,
                 ServeConfig Config)
    : J(J), TaskPool(std::move(TaskPool)), Config(Config),
      ServicePlan(J.config().Faults) {
  JANUS_ASSERT(!this->TaskPool.empty(), "service needs a non-empty task pool");
  JANUS_ASSERT(this->Config.BatchMax >= 1, "BatchMax must be >= 1");
  // Engines tick commits into the board; the CM reads the escalation
  // level the watchdog writes. The board outlives every batch, so
  // pressure accumulates across batches the way a service needs.
  J.setPressureBoard(&Board);
  if (obs::Observer *O = J.observer()) {
    obs::MetricsRegistry &M = O->metrics();
    CtrSubmissions = &M.counter("serve.submissions");
    CtrSheds = &M.counter("serve.sheds");
    CtrCommitted = &M.counter("serve.committed");
    CtrDeadline = &M.counter("serve.deadline_failures");
    CtrEscalations = &M.counter("serve.watchdog_escalations");
    CtrDrained = &M.counter("serve.drained_inflight");
    CtrBatches = &M.counter("serve.batches");
  }
}

Service::~Service() {
  // serve() joins the watchdog on its way out; this only matters for a
  // service destroyed without serve() having completed normally.
  Done.store(true, std::memory_order_release);
  if (Watchdog.joinable())
    Watchdog.join();
  J.setPressureBoard(nullptr);
  J.setCancellations(nullptr);
}

void Service::setReplySink(std::function<void(const Reply &)> SinkIn) {
  std::lock_guard<std::mutex> G(ReplyMutex);
  Sink = std::move(SinkIn);
}

void Service::replyOut(const Reply &R) {
  std::lock_guard<std::mutex> G(ReplyMutex);
  Replies.fetch_add(1, std::memory_order_relaxed);
  if (Sink)
    Sink(R);
}

void Service::admissionDone(uint64_t Client) {
  std::lock_guard<std::mutex> G(AdmMutex);
  ClientAdmission &C = Admissions[Client];
  JANUS_ASSERT(C.Pending > 0, "reply without admission");
  --C.Pending;
}

void Service::shed(uint64_t Client, uint64_t SubId, const char *Why) {
  Sheds.fetch_add(1, std::memory_order_relaxed);
  if (CtrSheds)
    CtrSheds->add(1);
  tallyClient(Client, ReplyStatus::Overloaded);
  replyOut(Reply{Client, SubId, ReplyStatus::Overloaded, Why});
}

void Service::tallyClient(uint64_t Client, ReplyStatus S) {
  std::lock_guard<std::mutex> G(AdmMutex);
  ClientAdmission &C = Admissions[Client];
  switch (S) {
  case ReplyStatus::Committed:
    ++C.Committed;
    break;
  case ReplyStatus::Failed:
    ++C.Failed;
    break;
  case ReplyStatus::Deadline:
    ++C.Deadlines;
    break;
  case ReplyStatus::Overloaded:
    ++C.Sheds;
    break;
  case ReplyStatus::Cancelled:
    ++C.Cancelled;
    break;
  }
}

bool Service::submit(uint64_t Client, uint64_t SubId, uint32_t TaskIndex,
                     int64_t DeadlineRelUs) {
  Received.fetch_add(1, std::memory_order_relaxed);
  if (CtrSubmissions)
    CtrSubmissions->add(1);

  // Cheap rejections first — nothing here admits, so a false negative
  // on the racy reads only costs one shed under churn.
  uint32_t Seq = 0;
  const char *Why = nullptr;
  if (Stopping.load(std::memory_order_acquire))
    Why = "stopping";
  else if (Queue.sizeApprox() >= Config.QueueCap)
    Why = "queue full";
  else if (Board.EscalationLevel.load(std::memory_order_acquire) >= 2)
    Why = "forced-serial escalation";
  else if (ShedGate.load(std::memory_order_acquire))
    Why = "pressure";

  {
    std::lock_guard<std::mutex> G(AdmMutex);
    ClientAdmission &C = Admissions[Client];
    Seq = ++C.Seq; // Every submission gets a chaos coordinate, shed or not.
    if (!Why && ServicePlan.shedSubmission(static_cast<uint32_t>(Client), Seq))
      Why = "injected";
    // Re-check under the lock: requestStop() takes AdmMutex after
    // setting Stopping, so once it returns no further admission can
    // slip in — pendingTotal()==0 then really means "fully drained".
    if (!Why && Stopping.load(std::memory_order_acquire))
      Why = "stopping";
    if (!Why && C.Pending >= Config.LaneCap)
      Why = "client lane full";
    if (!Why)
      ++C.Pending;
  }
  if (Why) {
    shed(Client, SubId, Why);
    return false;
  }

  Submission S;
  S.Client = Client;
  S.SubId = SubId;
  S.Seq = Seq;
  S.TaskIndex = TaskIndex;
  S.DeadlineUs = DeadlineRelUs > 0 ? CancelToken::nowUs() + DeadlineRelUs : 0;
  Queue.push(std::move(S));
  return true;
}

void Service::requestStop() {
  bool Expected = false;
  if (Stopping.compare_exchange_strong(Expected, true,
                                       std::memory_order_acq_rel)) {
    DrainStartUs.store(CancelToken::nowUs(), std::memory_order_release);
    // Admission fence: submit() re-checks Stopping under AdmMutex, so
    // after this lock cycles, the set of admitted submissions is fixed.
    std::lock_guard<std::mutex> G(AdmMutex);
  }
}

uint64_t Service::pendingTotal() {
  std::lock_guard<std::mutex> G(AdmMutex);
  uint64_t N = 0;
  for (const auto &KV : Admissions)
    N += KV.second.Pending;
  return N;
}

void Service::drainQueueIntoLanes() {
  Submission S;
  while (Queue.pop(S))
    Lanes[S.Client].Q.push_back(std::move(S));
}

size_t Service::buildBatch(std::vector<Submission> &Batch) {
  // Deficit round-robin: each pass tops every non-empty lane's deficit
  // up by the quantum and takes up to that many submissions, so a
  // client that floods its lane gets the same per-pass share as one
  // that trickles.
  bool AnyQueued = true;
  while (Batch.size() < Config.BatchMax && AnyQueued) {
    AnyQueued = false;
    for (auto &KV : Lanes) {
      Lane &L = KV.second;
      if (L.Q.empty()) {
        L.Deficit = 0; // No banking credit while idle.
        continue;
      }
      L.Deficit += Config.DrrQuantum;
      while (L.Deficit > 0 && !L.Q.empty() &&
             Batch.size() < Config.BatchMax) {
        Submission S = std::move(L.Q.front());
        L.Q.pop_front();
        --L.Deficit;
        if (S.DeadlineUs != 0 && CancelToken::nowUs() >= S.DeadlineUs) {
          // Already expired: fail at dequeue, don't burn an attempt.
          DeadlineFailures.fetch_add(1, std::memory_order_relaxed);
          if (CtrDeadline)
            CtrDeadline->add(1);
          admissionDone(S.Client);
          tallyClient(S.Client, ReplyStatus::Deadline);
          replyOut(Reply{S.Client, S.SubId, ReplyStatus::Deadline,
                         "deadline exceeded before start"});
          continue;
        }
        Batch.push_back(std::move(S));
      }
      if (!L.Q.empty())
        AnyQueued = true;
    }
  }
  return Batch.size();
}

void Service::runBatch(std::vector<Submission> &Batch) {
  const size_t N = Batch.size();

  // Per-batch cancellation table: task ids are 1-based batch positions.
  resilience::CancellationTable Table(N);
  for (size_t I = 0; I != N; ++I)
    if (Batch[I].DeadlineUs != 0)
      Table.task(static_cast<uint32_t>(I + 1))
          ->setDeadlineUs(Batch[I].DeadlineUs);

  // Translate the chaos plan's client-coordinate abort/throw/delay
  // clauses into task coordinates for this batch. Attempt is pinned to
  // 1: the injected fault fires once and the retry machinery takes over.
  resilience::FaultPlan BatchPlan = ServicePlan;
  using FK = resilience::FaultAction::Kind;
  for (size_t I = 0; I != N; ++I) {
    for (FK K : {FK::ForceAbort, FK::ThrowTask, FK::DelayCommit}) {
      const resilience::FaultAction *A = ServicePlan.clientMatch(
          K, static_cast<uint32_t>(Batch[I].Client), Batch[I].Seq);
      if (!A)
        continue;
      resilience::FaultAction T;
      T.K = K;
      T.Tid = static_cast<uint32_t>(I + 1);
      T.Attempt = 1;
      T.Arg = A->Arg;
      BatchPlan.add(T);
    }
  }

  std::vector<stm::TaskFn> Tasks;
  Tasks.reserve(N);
  for (const Submission &S : Batch)
    Tasks.push_back(TaskPool[S.TaskIndex % TaskPool.size()]);

  // Flight recorder: tag each batch member with its (client, sub id)
  // on the auxiliary lane, so a dump triggered mid-service carries the
  // mapping from engine task ids back to client submissions.
  if (obs::Recorder *R = obs::janusRec(J.recorder()))
    for (size_t I = 0; I != N; ++I)
      R->record(R->lanes() - 1, obs::RecKind::ServeTag,
                static_cast<uint32_t>(I + 1), /*Attempt=*/0,
                /*Clock=*/Batch[I].SubId,
                static_cast<uint32_t>(Batch[I].Client));

  {
    std::lock_guard<std::mutex> G(ActiveMutex);
    ActiveTable = &Table;
    // The hard stop may already have fired between batches.
    if (HardCancelled.load(std::memory_order_acquire))
      Table.global().cancel(CancelReason::Shutdown);
  }
  BatchInFlight.store(true, std::memory_order_release);
  J.setFaults(std::move(BatchPlan));
  J.setCancellations(&Table);
  core::RunOutcome Out =
      Config.Ordered ? J.runInOrder(Tasks) : J.runOutOfOrder(Tasks);
  J.setCancellations(nullptr);
  BatchInFlight.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> G(ActiveMutex);
    ActiveTable = nullptr;
  }
  Batches.fetch_add(1, std::memory_order_relaxed);
  if (CtrBatches)
    CtrBatches->add(1);

  if (Config.Audit && J.lastTrace().Recorded) {
    analysis::AuditReport AR = analysis::audit(J.lastTrace(), Tasks,
                                               J.registry());
    if (!AR.clean()) {
      AuditViolations.fetch_add(1, std::memory_order_relaxed);
      // Anomaly trigger: snapshot the flight recorder while the batch
      // that violated its audit is still in the ring (scheduler
      // thread, engine quiesced).
      if (Config.DumpFn)
        Config.DumpFn("audit-violation");
    }
  }

  // Exactly one terminal reply per batch member, keyed by task id.
  std::vector<const resilience::TaskFailure *> ByTid(N, nullptr);
  for (const resilience::TaskFailure &F : Out.Failures)
    if (F.Tid >= 1 && F.Tid <= N)
      ByTid[F.Tid - 1] = &F;
  for (size_t I = 0; I != N; ++I) {
    const Submission &S = Batch[I];
    admissionDone(S.Client);
    const resilience::TaskFailure *F = ByTid[I];
    if (!F) {
      CommittedN.fetch_add(1, std::memory_order_relaxed);
      if (CtrCommitted)
        CtrCommitted->add(1);
      tallyClient(S.Client, ReplyStatus::Committed);
      replyOut(Reply{S.Client, S.SubId, ReplyStatus::Committed, {}});
      continue;
    }
    switch (F->FailKind) {
    case resilience::TaskFailure::Kind::Deadline:
      DeadlineFailures.fetch_add(1, std::memory_order_relaxed);
      if (CtrDeadline)
        CtrDeadline->add(1);
      tallyClient(S.Client, ReplyStatus::Deadline);
      replyOut(Reply{S.Client, S.SubId, ReplyStatus::Deadline, F->Reason});
      break;
    case resilience::TaskFailure::Kind::Shutdown:
      DrainedInflight.fetch_add(1, std::memory_order_relaxed);
      if (CtrDrained)
        CtrDrained->add(1);
      tallyClient(S.Client, ReplyStatus::Cancelled);
      replyOut(Reply{S.Client, S.SubId, ReplyStatus::Cancelled, F->Reason});
      break;
    case resilience::TaskFailure::Kind::Exception:
      FailedN.fetch_add(1, std::memory_order_relaxed);
      tallyClient(S.Client, ReplyStatus::Failed);
      replyOut(Reply{S.Client, S.SubId, ReplyStatus::Failed, F->Reason});
      break;
    }
  }
}

void Service::failBacklog() {
  drainQueueIntoLanes();
  for (auto &KV : Lanes) {
    Lane &L = KV.second;
    while (!L.Q.empty()) {
      Submission S = std::move(L.Q.front());
      L.Q.pop_front();
      DrainedInflight.fetch_add(1, std::memory_order_relaxed);
      if (CtrDrained)
        CtrDrained->add(1);
      admissionDone(S.Client);
      tallyClient(S.Client, ReplyStatus::Cancelled);
      replyOut(
          Reply{S.Client, S.SubId, ReplyStatus::Cancelled,
                "drain hard deadline"});
    }
  }
}

void Service::serve() {
  Done.store(false, std::memory_order_release);
  Watchdog = std::thread([this] { watchdogLoop(); });

  int64_t LastMetricsUs = CancelToken::nowUs();
  auto MetricsTick = [&] {
    if (Config.MetricsPeriodUs <= 0 || !Config.MetricsSink)
      return;
    int64_t Now = CancelToken::nowUs();
    if (Now - LastMetricsUs < Config.MetricsPeriodUs)
      return;
    LastMetricsUs = Now;
    if (const obs::Observer *O = J.observer())
      Config.MetricsSink(O->metricsJson());
  };

  // Flight-recorder dump triggers, polled here only: the scheduler
  // thread between batches is the one place the engine is quiesced, so
  // Recorder::snapshot() inside DumpFn races with nothing.
  auto PollDumps = [&] {
    if (!Config.DumpFn)
      return;
    if (Config.DumpFlag &&
        Config.DumpFlag->exchange(false, std::memory_order_acq_rel))
      Config.DumpFn("sigusr2");
    if (WantDump.exchange(false, std::memory_order_acq_rel))
      Config.DumpFn("watchdog");
  };

  std::vector<Submission> Batch;
  while (true) {
    if (Config.StopFlag &&
        Config.StopFlag->load(std::memory_order_acquire))
      requestStop();
    if (HardCancelled.load(std::memory_order_acquire))
      break; // The post-loop sweep fails the backlog.
    PollDumps();
    drainQueueIntoLanes();
    {
      // Lane-depth snapshot for rollupJson(): the only window into the
      // scheduler-private Lanes map.
      std::lock_guard<std::mutex> G(RollupMutex);
      LaneDepths.clear();
      for (const auto &KV : Lanes)
        LaneDepths[KV.first] = KV.second.Q.size();
    }
    Batch.clear();
    if (buildBatch(Batch) != 0) {
      runBatch(Batch);
      MetricsTick();
      continue;
    }
    // Nothing runnable. Drained means: admission fenced off AND every
    // admitted submission has been replied to (mid-push submissions
    // still count in Pending, so they are waited for, not dropped).
    if (Stopping.load(std::memory_order_acquire) && pendingTotal() == 0)
      break;
    MetricsTick();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  // Hard-cancel sweep: fail whatever is still admitted. A producer that
  // won admission just before the stop may be mid-push, so loop until
  // the pending count reaches zero — Stopping guarantees it only drops.
  while (pendingTotal() != 0) {
    drainQueueIntoLanes();
    failBacklog();
    if (pendingTotal() != 0)
      std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  Done.store(true, std::memory_order_release);
  Watchdog.join();

  // Final dump so a metrics poller sees the end-of-life totals.
  if (Config.MetricsPeriodUs > 0 && Config.MetricsSink)
    if (const obs::Observer *O = J.observer())
      Config.MetricsSink(O->metricsJson());
}

void Service::watchdogLoop() {
  uint64_t LastTicks = Board.CommitTicks.load(std::memory_order_relaxed);
  uint64_t LastSerial = Board.SerialFallbacks.load(std::memory_order_relaxed);
  int64_t LastProgressUs = CancelToken::nowUs();
  while (!Done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(Config.WatchdogPeriodUs));
    int64_t Now = CancelToken::nowUs();
    uint64_t Ticks = Board.CommitTicks.load(std::memory_order_relaxed);
    uint64_t Serial = Board.SerialFallbacks.load(std::memory_order_relaxed);
    uint64_t TickDelta = Ticks - LastTicks;
    uint64_t SerialDelta = Serial - LastSerial;
    LastTicks = Ticks;
    LastSerial = Serial;

    // Stall ladder: no commit progress while a batch is in flight
    // escalates one level per stall window; progress decays one level
    // per sample, so a recovered engine earns its budget back.
    if (TickDelta > 0) {
      LastProgressUs = Now;
      uint32_t L = Board.EscalationLevel.load(std::memory_order_acquire);
      if (L > 0)
        Board.EscalationLevel.store(L - 1, std::memory_order_release);
    } else if (BatchInFlight.load(std::memory_order_acquire) &&
               Now - LastProgressUs >= Config.StallEscalateUs) {
      uint32_t L = Board.EscalationLevel.load(std::memory_order_acquire);
      if (L < 2) {
        Board.EscalationLevel.store(L + 1, std::memory_order_release);
        WatchdogEscalations.fetch_add(1, std::memory_order_relaxed);
        if (CtrEscalations)
          CtrEscalations->add(1);
        // Anomaly trigger: ask the scheduler to dump the flight
        // recorder once the stalled batch (the anomaly itself) has
        // finished and the engine is quiesced.
        WantDump.store(true, std::memory_order_release);
      }
      LastProgressUs = Now; // Re-arm for the next rung.
    }

    // Pressure gate: shed new work while serial fallbacks dominate the
    // commit mix — the engine has gone pessimistic and more intake
    // would only lengthen the convoy.
    if (Config.ShedSerialShare > 0 && TickDelta > 0)
      ShedGate.store(static_cast<double>(SerialDelta) >
                         Config.ShedSerialShare *
                             static_cast<double>(TickDelta),
                     std::memory_order_release);

    // Drain hard deadline: cancel the in-flight batch via the global
    // token; the scheduler fails the rest of the backlog.
    if (Stopping.load(std::memory_order_acquire) &&
        !HardCancelled.load(std::memory_order_acquire)) {
      int64_t DS = DrainStartUs.load(std::memory_order_acquire);
      if (DS != 0 && Now - DS >= Config.DrainHardUs) {
        HardCancelled.store(true, std::memory_order_release);
        std::lock_guard<std::mutex> G(ActiveMutex);
        if (ActiveTable)
          ActiveTable->global().cancel(CancelReason::Shutdown);
      }
    }
  }
}

ServeReport Service::report() const {
  ServeReport R;
  R.Received = Received.load(std::memory_order_relaxed);
  R.Sheds = Sheds.load(std::memory_order_relaxed);
  R.Committed = CommittedN.load(std::memory_order_relaxed);
  R.Failed = FailedN.load(std::memory_order_relaxed);
  R.DeadlineFailures = DeadlineFailures.load(std::memory_order_relaxed);
  R.DrainedInflight = DrainedInflight.load(std::memory_order_relaxed);
  R.WatchdogEscalations =
      WatchdogEscalations.load(std::memory_order_relaxed);
  R.Batches = Batches.load(std::memory_order_relaxed);
  R.Replies = Replies.load(std::memory_order_relaxed);
  R.AuditViolations = AuditViolations.load(std::memory_order_relaxed);
  R.DrainedInTime = !HardCancelled.load(std::memory_order_relaxed);
  return R;
}

std::string Service::rollupJson() const {
  JsonWriter W;
  W.beginObject();
  W.field("schema_version", JsonSchemaVersion);
  W.key("clients");
  W.beginArray();
  {
    std::lock_guard<std::mutex> G(AdmMutex);
    for (const auto &[Client, C] : Admissions) {
      W.beginObject();
      W.field("client", static_cast<uint64_t>(Client));
      W.field("seq", static_cast<uint64_t>(C.Seq));
      W.field("pending", static_cast<uint64_t>(C.Pending));
      W.field("sheds", C.Sheds);
      W.field("committed", C.Committed);
      W.field("failed", C.Failed);
      W.field("deadline", C.Deadlines);
      W.field("cancelled", C.Cancelled);
      W.endObject();
    }
  }
  W.endArray();
  W.key("lanes");
  W.beginArray();
  {
    std::lock_guard<std::mutex> G(RollupMutex);
    for (const auto &[Client, Depth] : LaneDepths) {
      W.beginObject();
      W.field("client", static_cast<uint64_t>(Client));
      W.field("depth", static_cast<uint64_t>(Depth));
      W.endObject();
    }
  }
  W.endArray();
  W.field("queue_depth", static_cast<uint64_t>(Queue.sizeApprox()));
  W.field("watchdog_level", static_cast<uint64_t>(Board.EscalationLevel.load(
                                std::memory_order_acquire)));
  W.field("shed_gate", ShedGate.load(std::memory_order_acquire));
  W.field("batches", Batches.load(std::memory_order_relaxed));
  W.field("sheds", Sheds.load(std::memory_order_relaxed));
  W.field("deadline_failures",
          DeadlineFailures.load(std::memory_order_relaxed));
  W.endObject();
  return W.str();
}
