//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for the conflict module: DECOMPOSE, the
/// online CONFLICT test of Figure 8, the commutativity cache (incl.
/// serialization round-trips) and the sequence-based detector's
/// fallback chain.
///
//===----------------------------------------------------------------------===//

#include "janus/adt/TxMap.h"
#include "janus/conflict/CommutativityCache.h"
#include "janus/conflict/Decompose.h"
#include "janus/conflict/Explain.h"
#include "janus/conflict/OnlineConflict.h"
#include "janus/conflict/SequenceDetector.h"
#include "janus/conflict/SpecTable.h"
#include "janus/support/Rng.h"

#include <gtest/gtest.h>

using namespace janus;
using namespace janus::conflict;
using namespace janus::symbolic;
using stm::LogEntry;
using stm::TxLog;
using stm::TxLogRef;

namespace {

TxLogRef logOf(std::initializer_list<LogEntry> Entries) {
  return std::make_shared<const TxLog>(Entries);
}

} // namespace

// ---------------------------------------------------------------------------
// DECOMPOSE.
// ---------------------------------------------------------------------------

TEST(DecomposeTest, SplitsByLocationPreservingOrder) {
  ObjectId A{1}, B{2};
  TxLog Log{{Location(A), LocOp::add(1)},
            {Location(B), LocOp::write(Value::of(5))},
            {Location(A), LocOp::add(-1)},
            {Location(A, 3), LocOp::read()}};
  Decomposition D = decompose(Log);
  EXPECT_EQ(D.size(), 3u);
  ASSERT_EQ(D[Location(A)].size(), 2u);
  EXPECT_EQ(D[Location(A)][0], LocOp::add(1));
  EXPECT_EQ(D[Location(A)][1], LocOp::add(-1));
  EXPECT_EQ(D[Location(B)].size(), 1u);
  EXPECT_EQ(D[Location(A, 3)].size(), 1u);
}

TEST(DecomposeTest, ConcatenatesCommittedLogsInOrder) {
  ObjectId A{1};
  auto L1 = logOf({{Location(A), LocOp::write(Value::of(1))}});
  auto L2 = logOf({{Location(A), LocOp::write(Value::of(2))}});
  Decomposition D = decomposeAll({L1, L2});
  ASSERT_EQ(D[Location(A)].size(), 2u);
  EXPECT_EQ(D[Location(A)][0].Operand, Value::of(1));
  EXPECT_EQ(D[Location(A)][1].Operand, Value::of(2));
}

// ---------------------------------------------------------------------------
// Online CONFLICT (Figure 8).
// ---------------------------------------------------------------------------

TEST(OnlineConflictTest, AddsNeverConflict) {
  LocOpSeq Mine{LocOp::add(3)};
  LocOpSeq Theirs{LocOp::add(-7)};
  EXPECT_FALSE(conflictOnline(Value::of(0), Mine, Theirs));
}

TEST(OnlineConflictTest, IdentityVsIdentityNoConflict) {
  LocOpSeq Mine{LocOp::add(4), LocOp::add(-4)};
  LocOpSeq Theirs{LocOp::add(9), LocOp::add(-9)};
  EXPECT_FALSE(conflictOnline(Value::of(10), Mine, Theirs));
}

TEST(OnlineConflictTest, ReadVsWriteConflictsUnlessValueRestored) {
  LocOpSeq Mine{LocOp::read()};
  LocOpSeq SameWrite{LocOp::write(Value::of(5))};
  LocOpSeq OtherWrite{LocOp::write(Value::of(6))};
  EXPECT_FALSE(conflictOnline(Value::of(5), Mine, SameWrite));
  EXPECT_TRUE(conflictOnline(Value::of(5), Mine, OtherWrite));
}

TEST(OnlineConflictTest, EqualWritesDoNotConflict) {
  LocOpSeq Mine{LocOp::write(Value::of("black"))};
  LocOpSeq Theirs{LocOp::write(Value::of("black"))};
  EXPECT_FALSE(conflictOnline(Value::absent(), Mine, Theirs));
  LocOpSeq Other{LocOp::write(Value::of("white"))};
  EXPECT_TRUE(conflictOnline(Value::absent(), Mine, Other));
}

TEST(OnlineConflictTest, SameReadCatchesControlFlowDependence) {
  // The paper's §5.3 counterexample: COMMUTE alone is insufficient —
  // a read whose value differs between orders must conflict even if the
  // final value agrees.
  LocOpSeq Mine{LocOp::read(), LocOp::write(Value::of(1))};
  LocOpSeq Theirs{LocOp::write(Value::of(1))};
  // Final value is 1 in both orders (COMMUTE holds), but Mine's read
  // sees 0 vs 1.
  EXPECT_TRUE(conflictOnline(Value::of(0), Mine, Theirs));
}

TEST(OnlineConflictTest, RelaxationsDropChecks) {
  LocOpSeq Mine{LocOp::read()};
  LocOpSeq Theirs{LocOp::write(Value::of(6))};
  ChecksSpec RelaxRAW;
  RelaxRAW.SameReadA = RelaxRAW.SameReadB = false;
  EXPECT_FALSE(conflictOnline(Value::of(5), Mine, Theirs, RelaxRAW));

  LocOpSeq W1{LocOp::write(Value::of(1))};
  LocOpSeq W2{LocOp::write(Value::of(2))};
  ChecksSpec RelaxWAW;
  RelaxWAW.Commute = false;
  EXPECT_FALSE(conflictOnline(Value::of(0), W1, W2, RelaxWAW));
  EXPECT_TRUE(conflictOnline(Value::of(0), W1, W2));
}

// ---------------------------------------------------------------------------
// Cache.
// ---------------------------------------------------------------------------

TEST(CommutativityCacheTest, InsertLookup) {
  CommutativityCache C;
  CacheKey K{"work", "[A(p1), A(-p1)]+", "[A(p1), A(-p1)]+"};
  EXPECT_EQ(C.lookup(K), std::nullopt);
  C.insert(K, Condition::valid());
  ASSERT_TRUE(C.lookup(K).has_value());
  EXPECT_TRUE(C.lookup(K)->isValid());
  EXPECT_EQ(C.size(), 1u);
  // Distinct keys are distinct entries.
  CacheKey K2 = K;
  K2.TheirsSig = "W(p1)";
  EXPECT_EQ(C.lookup(K2), std::nullopt);
}

TEST(CommutativityCacheTest, SerializationRoundTrip) {
  CommutativityCache C;
  C.insert(CacheKey{"work", "A(p1)", "A(p1)"}, Condition::valid());
  C.insert(CacheKey{"flag", "W(q1)", "W(q1)"}, Condition::never());
  Condition Conditional = Condition::valid();
  Conditional.requireEqual(Term::opaqueSym(1),
                           Term::opaqueSym(1 + TheirParamOffset));
  Conditional.requireEqual(Term::intSym(EntrySym),
                           Term::constant(Value::of(7)));
  C.insert(CacheKey{"pixel", "W(q1)", "W(q2)"}, Conditional);

  std::string Text = C.serialize();
  CommutativityCache D;
  ASSERT_TRUE(D.deserializeInto(Text));
  EXPECT_EQ(D.size(), 3u);
  EXPECT_TRUE(D.lookup(CacheKey{"work", "A(p1)", "A(p1)"})->isValid());
  EXPECT_TRUE(D.lookup(CacheKey{"flag", "W(q1)", "W(q1)"})->isNever());
  auto Cond = D.lookup(CacheKey{"pixel", "W(q1)", "W(q2)"});
  ASSERT_TRUE(Cond.has_value());
  EXPECT_TRUE(Cond->isConditional());
  EXPECT_EQ(Cond->atoms().size(), 2u);
  // Re-serialization is stable.
  EXPECT_EQ(D.serialize(), Text);
}

TEST(CommutativityCacheTest, DeserializeRejectsGarbage) {
  CommutativityCache C;
  EXPECT_FALSE(C.deserializeInto("not a cache"));
  EXPECT_FALSE(C.deserializeInto("janus-commutativity-cache v1\nbogus"));
  EXPECT_TRUE(C.deserializeInto("janus-commutativity-cache v1\n"));
  EXPECT_EQ(C.size(), 0u);
}

// ---------------------------------------------------------------------------
// Sequence detector fallback chain.
// ---------------------------------------------------------------------------

namespace {

struct DetectorWorld {
  ObjectRegistry Reg;
  ObjectId Work;
  std::shared_ptr<CommutativityCache> Cache;
  DetectorWorld() : Cache(std::make_shared<CommutativityCache>()) {
    Work = Reg.registerObject("work");
  }
};

} // namespace

TEST(SequenceDetectorTest, EmptyHistoryNeverConflicts) {
  DetectorWorld W;
  SequenceDetector D(W.Cache);
  TxLog Mine{{Location(W.Work), LocOp::add(1)}};
  EXPECT_FALSE(D.detectConflicts(stm::Snapshot(), Mine, {}, W.Reg));
}

TEST(SequenceDetectorTest, MissWithWriteSetFallbackIsConservative) {
  DetectorWorld W;
  SequenceDetectorConfig Cfg;
  Cfg.OnlineFallback = false;
  SequenceDetector D(W.Cache, Cfg);
  TxLog Mine{{Location(W.Work), LocOp::add(1)}};
  auto Theirs = logOf({{Location(W.Work), LocOp::add(2)}});
  // Empty cache: write-set fallback flags the add/add pair.
  EXPECT_TRUE(D.detectConflicts(stm::Snapshot(), Mine, {Theirs}, W.Reg));
  EXPECT_EQ(D.stats().CacheMisses.load(), 1u);
  EXPECT_EQ(D.stats().WriteSetChecks.load(), 1u);
}

TEST(SequenceDetectorTest, MissWithOnlineFallbackIsPrecise) {
  DetectorWorld W;
  SequenceDetectorConfig Cfg;
  Cfg.OnlineFallback = true;
  SequenceDetector D(W.Cache, Cfg);
  TxLog Mine{{Location(W.Work), LocOp::add(1)}};
  auto Theirs = logOf({{Location(W.Work), LocOp::add(2)}});
  EXPECT_FALSE(D.detectConflicts(stm::Snapshot(), Mine, {Theirs}, W.Reg));
  EXPECT_EQ(D.stats().OnlineChecks.load(), 1u);
}

TEST(SequenceDetectorTest, CacheHitAnswersQuery) {
  DetectorWorld W;
  SequenceDetector D(W.Cache);
  TxLog Mine{{Location(W.Work), LocOp::add(1)}};
  auto Theirs = logOf({{Location(W.Work), LocOp::add(2)}});

  // Populate the cache the way the trainer would.
  PairQuery Q = buildPairQuery("work", {LocOp::add(1)}, {LocOp::add(2)},
                               /*UseAbstraction=*/true);
  W.Cache->insert(Q.Key, Condition::valid());

  EXPECT_FALSE(D.detectConflicts(stm::Snapshot(), Mine, {Theirs}, W.Reg));
  EXPECT_EQ(D.stats().CacheHits.load(), 1u);
  EXPECT_EQ(D.stats().CacheMisses.load(), 0u);
}

TEST(SequenceDetectorTest, CachedNeverConditionConflicts) {
  DetectorWorld W;
  SequenceDetector D(W.Cache);
  TxLog Mine{{Location(W.Work), LocOp::write(Value::of(1))}};
  auto Theirs = logOf({{Location(W.Work), LocOp::write(Value::of(2))}});
  PairQuery Q = buildPairQuery("work", {LocOp::write(Value::of(1))},
                               {LocOp::write(Value::of(2))}, true);
  W.Cache->insert(Q.Key, Condition::never());
  EXPECT_TRUE(D.detectConflicts(stm::Snapshot(), Mine, {Theirs}, W.Reg));
}

TEST(SequenceDetectorTest, ConditionalEntryEvaluatesBindings) {
  // Equal-writes: cache "W(q1) vs W(q2) commute iff q1 == q2".
  DetectorWorld W;
  SequenceDetector D(W.Cache);
  PairQuery Q = buildPairQuery("work", {LocOp::write(Value::of("a"))},
                               {LocOp::write(Value::of("b"))}, true);
  Condition Cond = Condition::valid();
  Cond.requireEqual(Term::opaqueSym(1),
                    Term::opaqueSym(1 + TheirParamOffset));
  W.Cache->insert(Q.Key, Cond);

  auto Check = [&](const char *MineVal, const char *TheirVal) {
    TxLog Mine{{Location(W.Work), LocOp::write(Value::of(MineVal))}};
    auto Theirs = logOf({{Location(W.Work), LocOp::write(Value::of(TheirVal))}});
    return D.detectConflicts(stm::Snapshot(), Mine, {Theirs}, W.Reg);
  };
  EXPECT_FALSE(Check("black", "black")); // Equal writes commute.
  EXPECT_TRUE(Check("black", "white"));  // Different values conflict.
}

TEST(SequenceDetectorTest, UniqueQueryTracking) {
  DetectorWorld W;
  SequenceDetector D(W.Cache);
  TxLog Mine{{Location(W.Work), LocOp::add(1)}};
  auto Theirs = logOf({{Location(W.Work), LocOp::add(2)}});
  // The same query repeated counts once (Figure 11 methodology).
  for (int I = 0; I != 5; ++I)
    D.detectConflicts(stm::Snapshot(), Mine, {Theirs}, W.Reg);
  EXPECT_EQ(D.uniqueQueries(), 1u);
  EXPECT_EQ(D.uniqueMisses(), 1u);
  EXPECT_EQ(D.stats().CacheMisses.load(), 5u);
  D.resetUniqueQueryTracking();
  EXPECT_EQ(D.uniqueQueries(), 0u);
}

TEST(SequenceDetectorTest, RelaxedObjectsUseRelaxedChecks) {
  // maxColor-style spurious reads: with tolerate-RAW, a pure read never
  // conflicts with a write (online fallback path).
  DetectorWorld W;
  ObjectId MaxColor = W.Reg.registerObject(
      "maxColor", "", RelaxationSpec{/*TolerateRAW=*/true,
                                     /*TolerateWAW=*/false});
  SequenceDetectorConfig Cfg;
  Cfg.OnlineFallback = true;
  SequenceDetector D(W.Cache, Cfg);
  TxLog Mine{{Location(MaxColor), LocOp::read()}};
  auto Theirs = logOf({{Location(MaxColor), LocOp::write(Value::of(7))}});
  stm::Snapshot S;
  S = S.set(Location(MaxColor), Value::of(3));
  EXPECT_FALSE(D.detectConflicts(S, Mine, {Theirs}, W.Reg));
}

// ---------------------------------------------------------------------------
// Property: the online CONFLICT answer matches brute-force two-order
// evaluation across random sequences, and sequence detection is never
// *less* precise than write-set when falling back online.
// ---------------------------------------------------------------------------

namespace {

LocOpSeq randomSeq(Rng &R) {
  LocOpSeq Seq;
  for (int I = 0, E = 1 + static_cast<int>(R.below(4)); I != E; ++I) {
    switch (R.below(3)) {
    case 0:
      Seq.push_back(LocOp::read());
      break;
    case 1:
      Seq.push_back(LocOp::add(R.range(-3, 3)));
      break;
    default:
      Seq.push_back(LocOp::write(Value::of(R.range(0, 4))));
      break;
    }
  }
  return Seq;
}

bool bruteForceCommute(const Value &Entry, const LocOpSeq &A,
                       const LocOpSeq &B) {
  SeqEval AloneA = evalSequence(Entry, A);
  SeqEval AloneB = evalSequence(Entry, B);
  SeqEval AAfterB = evalSequence(AloneB.Final, A);
  SeqEval BAfterA = evalSequence(AloneA.Final, B);
  return BAfterA.Final == AAfterB.Final && AloneA.Reads == AAfterB.Reads &&
         AloneB.Reads == BAfterA.Reads;
}

} // namespace

class OnlineConflictProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OnlineConflictProperty, MatchesBruteForce) {
  Rng R(GetParam());
  for (int Iter = 0; Iter != 400; ++Iter) {
    LocOpSeq A = randomSeq(R), B = randomSeq(R);
    Value Entry = Value::of(R.range(-3, 3));
    EXPECT_EQ(conflictOnline(Entry, A, B),
              !bruteForceCommute(Entry, A, B))
        << "iteration " << Iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineConflictProperty,
                         ::testing::Values(3, 5, 7, 11));

TEST(SequenceDetectorTest, SignatureMemoDoesNotChangeVerdicts) {
  // Same queries with and without the memo must produce identical
  // answers and identical cache-hit accounting.
  DetectorWorld W1, W2;
  PairQuery Q = buildPairQuery("work", {LocOp::add(1), LocOp::add(-1)},
                               {LocOp::add(2), LocOp::add(-2)}, true);
  W1.Cache->insert(Q.Key, Condition::valid());
  W2.Cache->insert(Q.Key, Condition::valid());

  SequenceDetectorConfig WithMemo;
  WithMemo.MemoizeSignatures = true;
  SequenceDetectorConfig NoMemo;
  NoMemo.MemoizeSignatures = false;
  SequenceDetector D1(W1.Cache, WithMemo), D2(W2.Cache, NoMemo);

  for (int I = 0; I != 20; ++I) {
    TxLog Mine{{Location(W1.Work), LocOp::add(I + 1)},
               {Location(W1.Work), LocOp::add(-(I + 1))}};
    auto Theirs = logOf({{Location(W1.Work), LocOp::add(5)},
                         {Location(W1.Work), LocOp::add(-5)}});
    bool V1 = D1.detectConflicts(stm::Snapshot(), Mine, {Theirs}, W1.Reg);
    // W2 has the same object layout (same registration order).
    bool V2 = D2.detectConflicts(stm::Snapshot(), Mine, {Theirs}, W2.Reg);
    EXPECT_EQ(V1, V2) << "iteration " << I;
    EXPECT_FALSE(V1);
  }
  EXPECT_EQ(D1.stats().CacheHits.load(), D2.stats().CacheHits.load());
}

TEST(SequenceDetectorTest, MemoDistinguishesReadResults) {
  // Two sequences with identical kinds/operands but different read
  // results symbolize differently (read-plus patterns); the memo key
  // must not conflate them.
  DetectorWorld W;
  SequenceDetectorConfig Cfg;
  Cfg.OnlineFallback = true;
  SequenceDetector D(W.Cache, Cfg);

  stm::Snapshot S5;
  S5 = S5.set(Location(W.Work), Value::of(int64_t(5)));
  // Mine reads 5 and writes 6 (read-plus). Theirs writes 6 as well:
  // equal writes + consistent read ⇒ no conflict.
  TxLog MineA{{Location(W.Work), LocOp::read(Value::of(int64_t(5)))},
              {Location(W.Work), LocOp::write(Value::of(int64_t(6)))}};
  auto TheirsSame = logOf({{Location(W.Work), LocOp::write(Value::of(int64_t(6)))}});
  // Read 5 then their write 6: my read differs across orders → conflict.
  EXPECT_TRUE(D.detectConflicts(S5, MineA, {TheirsSame}, W.Reg));

  // Identical ops but the read observed 6 (snapshot already 6): in both
  // orders my read sees 6 and both final writes agree → no conflict.
  stm::Snapshot S6;
  S6 = S6.set(Location(W.Work), Value::of(int64_t(6)));
  TxLog MineB{{Location(W.Work), LocOp::read(Value::of(int64_t(6)))},
              {Location(W.Work), LocOp::write(Value::of(int64_t(6)))}};
  EXPECT_FALSE(D.detectConflicts(S6, MineB, {TheirsSame}, W.Reg));
}

// ---------------------------------------------------------------------------
// Edge cases: empty logs, single-op sequences, self-conflicting
// transactions and log reuse across an abort/retry.
// ---------------------------------------------------------------------------

TEST(OnlineConflictTest, EmptySequencesNeverConflict) {
  EXPECT_FALSE(conflictOnline(Value::of(3), {}, {}));
  EXPECT_FALSE(conflictOnline(Value::of(3), {}, {LocOp::write(Value::of(9))}));
  EXPECT_FALSE(conflictOnline(Value::of(3), {LocOp::write(Value::of(9))}, {}));
}

TEST(SequenceDetectorTest, EmptyMineLogNeverConflicts) {
  DetectorWorld W;
  SequenceDetectorConfig Cfg;
  Cfg.OnlineFallback = true;
  SequenceDetector D(W.Cache, Cfg);
  TxLog Empty;
  auto Theirs = logOf({{Location(W.Work), LocOp::write(Value::of(1))}});
  EXPECT_FALSE(D.detectConflicts(stm::Snapshot(), Empty, {Theirs}, W.Reg));
  // Empty committed window: nothing to conflict with either.
  TxLog Mine{{Location(W.Work), LocOp::write(Value::of(2))}};
  EXPECT_FALSE(D.detectConflicts(stm::Snapshot(), Mine, {}, W.Reg));
  // An empty committed log inside a non-empty window is also inert.
  EXPECT_FALSE(D.detectConflicts(stm::Snapshot(), Mine, {logOf({})}, W.Reg));
}

TEST(OnlineConflictTest, SingleOpPairs) {
  Value E = Value::of(int64_t(4));
  // Read/read: insensitive to order.
  EXPECT_FALSE(conflictOnline(E, {LocOp::read()}, {LocOp::read()}));
  // Equal single writes commute; different ones do not.
  EXPECT_FALSE(conflictOnline(E, {LocOp::write(Value::of(7))},
                              {LocOp::write(Value::of(7))}));
  EXPECT_TRUE(conflictOnline(E, {LocOp::write(Value::of(7))},
                             {LocOp::write(Value::of(8))}));
  // Single adds always commute.
  EXPECT_FALSE(conflictOnline(E, {LocOp::add(2)}, {LocOp::add(-9)}));
  // Read vs write: conflicts unless the write restores the entry value.
  EXPECT_TRUE(conflictOnline(E, {LocOp::read()}, {LocOp::write(Value::of(5))}));
  EXPECT_FALSE(conflictOnline(E, {LocOp::read()},
                              {LocOp::write(Value::of(int64_t(4)))}));
}

TEST(OnlineConflictTest, SelfConflictingSequence) {
  // A read-modify-write run against a copy of itself: whichever copy
  // goes second reads the other's write, so SAMEREAD fails — a
  // transaction's log can conflict with its own kind.
  Value E = Value::of(int64_t(0));
  symbolic::LocOpSeq Rmw{LocOp::read(Value::of(int64_t(0))),
                         LocOp::write(Value::of(int64_t(1)))};
  EXPECT_TRUE(conflictOnline(E, Rmw, Rmw));
  // Semantic adds self-commute; pure reads trivially so.
  EXPECT_FALSE(conflictOnline(E, {LocOp::add(1)}, {LocOp::add(1)}));
  EXPECT_FALSE(conflictOnline(E, {LocOp::read()}, {LocOp::read()}));
}

// ---------------------------------------------------------------------------
// Conflict explanations (the diagnostic behind `janus explain` and the
// obs abort-attribution report).
// ---------------------------------------------------------------------------

namespace {

/// Runs \p Body as a transaction against \p S and returns its log.
template <typename Fn>
TxLog logOfTx(const stm::Snapshot &S, uint32_t Tid,
              const ObjectRegistry &Reg, Fn Body) {
  stm::TxContext Tx(S, Tid, Reg);
  Body(Tx);
  return Tx.log();
}

} // namespace

TEST(ExplainTest, TxMapGetVsPutSameKeyNamesLocationOpsAndReason) {
  // PMD-style attribute store: my get() raced a committed put() on the
  // same key. The explanation must name the concrete (object, key)
  // location, render both sides' sequences, and blame SAMEREAD.
  ObjectRegistry Reg;
  adt::TxMap Attrs = adt::TxMap::create(Reg, "attrs");
  stm::Snapshot S;
  S = S.set(Attrs.locationAt("suppressed"), Value::of(int64_t(0)));

  TxLog Mine = logOfTx(S, 1, Reg, [&](stm::TxContext &Tx) {
    ASSERT_TRUE(Attrs.get(Tx, "suppressed").has_value());
  });
  auto Theirs =
      std::make_shared<const TxLog>(logOfTx(S, 2, Reg, [&](stm::TxContext &Tx) {
        Attrs.put(Tx, "suppressed", Value::of(int64_t(1)));
      }));

  ConflictExplanation Ex = explainConflict(S, Mine, {Theirs}, Reg);
  ASSERT_TRUE(Ex.Conflicting);
  EXPECT_EQ(Ex.Loc, Attrs.locationAt("suppressed"));
  EXPECT_EQ(Ex.LocationName, "attrs[\"suppressed\"]");
  EXPECT_EQ(Ex.MineSeq, "R");
  EXPECT_EQ(Ex.TheirsSeq, "W(1)");
  EXPECT_NE(Ex.Reason.find("SAMEREAD violated"), std::string::npos)
      << Ex.Reason;
  // The one-line rendering carries all three pieces.
  std::string Line = Ex.toString();
  EXPECT_NE(Line.find("attrs[\"suppressed\"]"), std::string::npos) << Line;
  EXPECT_NE(Line.find("mine: R"), std::string::npos) << Line;
  EXPECT_NE(Line.find("theirs: W(1)"), std::string::npos) << Line;
}

TEST(ExplainTest, TxMapPutVsPutSameKeyIsCommuteViolation) {
  // Two puts of different values to the same key: no reads, so the
  // SAMEREAD checks pass and the final-value COMMUTE check fires.
  ObjectRegistry Reg;
  adt::TxMap Attrs = adt::TxMap::create(Reg, "attrs");
  stm::Snapshot S;

  TxLog Mine = logOfTx(S, 1, Reg, [&](stm::TxContext &Tx) {
    Attrs.put(Tx, "k", Value::of(int64_t(1)));
  });
  auto Theirs =
      std::make_shared<const TxLog>(logOfTx(S, 2, Reg, [&](stm::TxContext &Tx) {
        Attrs.put(Tx, "k", Value::of(int64_t(2)));
      }));

  ConflictExplanation Ex = explainConflict(S, Mine, {Theirs}, Reg);
  ASSERT_TRUE(Ex.Conflicting);
  EXPECT_EQ(Ex.LocationName, "attrs[\"k\"]");
  EXPECT_NE(Ex.Reason.find("COMMUTE violated"), std::string::npos)
      << Ex.Reason;
  // Both orders' final values are named in the reason.
  EXPECT_NE(Ex.Reason.find("2 (mine first)"), std::string::npos) << Ex.Reason;
  EXPECT_NE(Ex.Reason.find("1 (history first)"), std::string::npos)
      << Ex.Reason;
}

TEST(ExplainTest, DistinctKeysAndCommutingOpsDoNotConflict) {
  ObjectRegistry Reg;
  adt::TxMap Attrs = adt::TxMap::create(Reg, "attrs");
  stm::Snapshot S;

  // Different keys of the same map are different locations.
  TxLog Mine = logOfTx(S, 1, Reg, [&](stm::TxContext &Tx) {
    Attrs.put(Tx, "a", Value::of(int64_t(1)));
  });
  auto OtherKey =
      std::make_shared<const TxLog>(logOfTx(S, 2, Reg, [&](stm::TxContext &Tx) {
        Attrs.put(Tx, "b", Value::of(int64_t(2)));
      }));
  EXPECT_FALSE(explainConflict(S, Mine, {OtherKey}, Reg).Conflicting);

  // Same key, commuting reduction updates (addAt): no conflict either.
  TxLog MineAdd = logOfTx(S, 1, Reg, [&](stm::TxContext &Tx) {
    Attrs.addAt(Tx, "hits", 1);
  });
  auto TheirAdd =
      std::make_shared<const TxLog>(logOfTx(S, 2, Reg, [&](stm::TxContext &Tx) {
        Attrs.addAt(Tx, "hits", 5);
      }));
  ConflictExplanation Ex = explainConflict(S, MineAdd, {TheirAdd}, Reg);
  EXPECT_FALSE(Ex.Conflicting);
  EXPECT_EQ(Ex.toString(), "no conflict");
}

TEST(ExplainTest, ExplanationIsDeterministicAcrossRepeats) {
  // The attribution report aggregates explanation strings by key;
  // identical inputs must therefore explain identically every time,
  // including which location is blamed when several conflict.
  ObjectRegistry Reg;
  adt::TxMap Attrs = adt::TxMap::create(Reg, "attrs");
  stm::Snapshot S;
  S = S.set(Attrs.locationAt("x"), Value::of(int64_t(10)));
  S = S.set(Attrs.locationAt("y"), Value::of(int64_t(20)));

  // Mine touches two keys that both conflict with the committed log.
  TxLog Mine = logOfTx(S, 1, Reg, [&](stm::TxContext &Tx) {
    ASSERT_TRUE(Attrs.get(Tx, "x").has_value());
    ASSERT_TRUE(Attrs.get(Tx, "y").has_value());
  });
  auto Theirs =
      std::make_shared<const TxLog>(logOfTx(S, 2, Reg, [&](stm::TxContext &Tx) {
        Attrs.put(Tx, "y", Value::of(int64_t(21)));
        Attrs.put(Tx, "x", Value::of(int64_t(11)));
      }));

  std::string First = explainConflict(S, Mine, {Theirs}, Reg).toString();
  for (int I = 0; I != 5; ++I)
    EXPECT_EQ(explainConflict(S, Mine, {Theirs}, Reg).toString(), First);
}

TEST(SequenceDetectorTest, RetriedLogRevalidatesDeterministically) {
  // Abort-then-retry reuses the detector against a grown window: the
  // same (Mine, Theirs) pair must keep its verdict, and extending the
  // window with a commuting commit must not flip a clean validation.
  DetectorWorld W;
  SequenceDetectorConfig Cfg;
  Cfg.OnlineFallback = true;
  SequenceDetector D(W.Cache, Cfg);
  TxLog Mine{{Location(W.Work), LocOp::add(1)}};
  auto First = logOf({{Location(W.Work), LocOp::add(5)}});
  auto Second = logOf({{Location(W.Work), LocOp::add(-2)}});
  bool V1 = D.detectConflicts(stm::Snapshot(), Mine, {First}, W.Reg);
  bool V2 = D.detectConflicts(stm::Snapshot(), Mine, {First}, W.Reg);
  EXPECT_EQ(V1, V2);
  EXPECT_FALSE(V1);
  EXPECT_FALSE(D.detectConflicts(stm::Snapshot(), Mine, {First, Second},
                                 W.Reg));
  // A non-commuting commit in the retry window does flip the verdict.
  auto Clobber = logOf({{Location(W.Work), LocOp::write(Value::of(9))}});
  TxLog Reader{{Location(W.Work), LocOp::read()}};
  EXPECT_FALSE(D.detectConflicts(stm::Snapshot(), Reader, {}, W.Reg));
  EXPECT_TRUE(D.detectConflicts(stm::Snapshot(), Reader,
                                {First, Clobber}, W.Reg));
}

// ---------------------------------------------------------------------------
// SPEC TABLES (tier-1 dispatch, DESIGN.md §14).
// ---------------------------------------------------------------------------

namespace {

/// Evaluates the spec for \p Kind on one (entry, mine, theirs) point
/// with the default (all-on) checks.
SpecVerdict specOn(AdtKind Kind, const Value &Entry, const LocOpSeq &Mine,
                   const LocOpSeq &Theirs) {
  SpecFn Fn = specFor(Kind);
  EXPECT_NE(Fn, nullptr);
  return Fn(Entry, Mine, Theirs, ChecksSpec{});
}

} // namespace

TEST(SpecTableTest, CounterAddsAlwaysCommute) {
  EXPECT_EQ(specOn(AdtKind::Counter, Value::of(int64_t(5)),
                   {LocOp::add(1)}, {LocOp::add(-7)}),
            SpecVerdict::Commutes);
  EXPECT_EQ(specOn(AdtKind::Counter, Value::absent(),
                   {LocOp::add(2), LocOp::add(3)}, {LocOp::add(4)}),
            SpecVerdict::Commutes);
}

TEST(SpecTableTest, CounterReadVsNonzeroAddConflicts) {
  EXPECT_EQ(specOn(AdtKind::Counter, Value::of(int64_t(0)),
                   {LocOp::read()}, {LocOp::add(1)}),
            SpecVerdict::Conflicts);
  // A zero net add leaves the read stable.
  EXPECT_EQ(specOn(AdtKind::Counter, Value::of(int64_t(0)),
                   {LocOp::read()}, {LocOp::add(3), LocOp::add(-3)}),
            SpecVerdict::Commutes);
}

TEST(SpecTableTest, CounterAbstainsOnWrites) {
  // The counter table only claims add/read shapes; writes defer to the
  // learned tiers.
  EXPECT_EQ(specOn(AdtKind::Counter, Value::of(int64_t(0)),
                   {LocOp::write(Value::of(int64_t(1)))}, {LocOp::add(1)}),
            SpecVerdict::Abstain);
}

TEST(SpecTableTest, MapEqualPutsCommuteUnequalConflict) {
  LocOpSeq PutA{LocOp::write(Value::of("a"))};
  LocOpSeq PutB{LocOp::write(Value::of("b"))};
  EXPECT_EQ(specOn(AdtKind::Map, Value::of("x"), PutA, PutA),
            SpecVerdict::Commutes);
  EXPECT_EQ(specOn(AdtKind::Map, Value::of("x"), PutA, PutB),
            SpecVerdict::Conflicts);
}

TEST(SpecTableTest, MapGetVsPutDependsOnEntryPreservation) {
  LocOpSeq Get{LocOp::read()};
  // Overwriting the entry with its current value preserves the read.
  EXPECT_EQ(specOn(AdtKind::Map, Value::of("x"),
                   Get, {LocOp::write(Value::of("x"))}),
            SpecVerdict::Commutes);
  EXPECT_EQ(specOn(AdtKind::Map, Value::of("x"),
                   Get, {LocOp::write(Value::of("y"))}),
            SpecVerdict::Conflicts);
}

TEST(SpecTableTest, QueueDequeueVsDequeueConflicts) {
  // Competing dequeues both consume the same cell (write Absent after
  // reading it): order-dependent.
  LocOpSeq Dequeue{LocOp::read(), LocOp::write(Value::absent())};
  EXPECT_EQ(specOn(AdtKind::Queue, Value::of(int64_t(42)), Dequeue, Dequeue),
            SpecVerdict::Conflicts);
}

TEST(SpecTableTest, QueueAbstainsOnAdds) {
  EXPECT_EQ(specOn(AdtKind::Queue, Value::of(int64_t(0)),
                   {LocOp::add(1)}, {LocOp::add(1)}),
            SpecVerdict::Abstain);
}

TEST(SpecTableTest, BitSetIdempotentSetsCommuteSetVsClearConflicts) {
  LocOpSeq Set{LocOp::write(Value::of(true))};
  LocOpSeq Clear{LocOp::write(Value::of(false))};
  EXPECT_EQ(specOn(AdtKind::BitSet, Value::of(false), Set, Set),
            SpecVerdict::Commutes);
  EXPECT_EQ(specOn(AdtKind::BitSet, Value::of(false), Set, Clear),
            SpecVerdict::Conflicts);
}

TEST(SpecTableTest, EveryTableEntryHasNameAndFn) {
  for (const SpecTableEntry &E : SpecTables) {
    EXPECT_NE(E.Fn, nullptr);
    EXPECT_NE(E.Name, nullptr);
    EXPECT_EQ(specFor(E.Kind), E.Fn);
  }
  EXPECT_EQ(specFor(AdtKind::None), nullptr);
}

TEST(SpecDispatchTest, SpecHitSkipsCacheAndOnline) {
  DetectorWorld W;
  W.Reg.declareAdt(W.Work, AdtKind::Counter);
  SequenceDetectorConfig Cfg;
  Cfg.Specs = SpecMode::On;
  Cfg.OnlineFallback = true;
  SequenceDetector D(W.Cache, Cfg);
  TxLog Mine{{Location(W.Work), LocOp::add(1)}};
  auto Theirs = logOf({{Location(W.Work), LocOp::add(2)}});
  EXPECT_FALSE(D.detectConflicts(stm::Snapshot(), Mine, {Theirs}, W.Reg));
  EXPECT_EQ(D.stats().SpecHits.load(), 1u);
  EXPECT_EQ(D.stats().CacheHits.load(), 0u);
  EXPECT_EQ(D.stats().CacheMisses.load(), 0u);
  EXPECT_EQ(D.stats().OnlineChecks.load(), 0u);
}

TEST(SpecDispatchTest, AbstainFallsThroughToLearnedTier) {
  DetectorWorld W;
  W.Reg.declareAdt(W.Work, AdtKind::Counter);
  SequenceDetectorConfig Cfg;
  Cfg.Specs = SpecMode::On;
  Cfg.OnlineFallback = true;
  SequenceDetector D(W.Cache, Cfg);
  // Writes make the counter table abstain; the online tier answers.
  TxLog Mine{{Location(W.Work), LocOp::write(Value::of(int64_t(1)))}};
  auto Theirs = logOf({{Location(W.Work), LocOp::add(2)}});
  EXPECT_TRUE(D.detectConflicts(stm::Snapshot(), Mine, {Theirs}, W.Reg));
  EXPECT_EQ(D.stats().SpecAbstains.load(), 1u);
  EXPECT_EQ(D.stats().SpecHits.load(), 0u);
  EXPECT_EQ(D.stats().OnlineChecks.load(), 1u);
}

TEST(SpecDispatchTest, SpecsOffNeverConsultTables) {
  DetectorWorld W;
  W.Reg.declareAdt(W.Work, AdtKind::Counter);
  SequenceDetectorConfig Cfg;
  Cfg.Specs = SpecMode::Off;
  Cfg.OnlineFallback = true;
  SequenceDetector D(W.Cache, Cfg);
  TxLog Mine{{Location(W.Work), LocOp::add(1)}};
  auto Theirs = logOf({{Location(W.Work), LocOp::add(2)}});
  EXPECT_FALSE(D.detectConflicts(stm::Snapshot(), Mine, {Theirs}, W.Reg));
  EXPECT_EQ(D.stats().SpecHits.load(), 0u);
  EXPECT_EQ(D.stats().SpecAbstains.load(), 0u);
}

TEST(SpecDispatchTest, OnlyModeBypassesLearnedTiersOnAbstain) {
  DetectorWorld W;
  W.Reg.declareAdt(W.Work, AdtKind::Counter);
  SequenceDetectorConfig Cfg;
  Cfg.Specs = SpecMode::Only;
  Cfg.OnlineFallback = true;
  SequenceDetector D(W.Cache, Cfg);
  // Abstain in Only mode goes straight to the write-set test — the
  // write/add pair conflicts there, and no learned tier runs.
  TxLog Mine{{Location(W.Work), LocOp::write(Value::of(int64_t(1)))}};
  auto Theirs = logOf({{Location(W.Work), LocOp::add(2)}});
  EXPECT_TRUE(D.detectConflicts(stm::Snapshot(), Mine, {Theirs}, W.Reg));
  EXPECT_EQ(D.stats().SpecAbstains.load(), 1u);
  EXPECT_EQ(D.stats().WriteSetChecks.load(), 1u);
  EXPECT_EQ(D.stats().OnlineChecks.load(), 0u);
  EXPECT_EQ(D.stats().CacheMisses.load(), 0u);
}

TEST(SpecDispatchTest, UndeclaredObjectsSkipSpecTier) {
  DetectorWorld W; // No declareAdt: AdtKind::None.
  SequenceDetectorConfig Cfg;
  Cfg.Specs = SpecMode::On;
  Cfg.OnlineFallback = true;
  SequenceDetector D(W.Cache, Cfg);
  TxLog Mine{{Location(W.Work), LocOp::add(1)}};
  auto Theirs = logOf({{Location(W.Work), LocOp::add(2)}});
  EXPECT_FALSE(D.detectConflicts(stm::Snapshot(), Mine, {Theirs}, W.Reg));
  EXPECT_EQ(D.stats().SpecHits.load(), 0u);
  EXPECT_EQ(D.stats().SpecAbstains.load(), 0u);
  EXPECT_EQ(D.stats().OnlineChecks.load(), 1u);
}

TEST(SpecDispatchTest, SpecVerdictsMatchOnlineReference) {
  // On spec-covered pairs the tier-1 verdict must agree with the exact
  // online check (soundness AND exactness, the same obligation the
  // verify gate replays exhaustively).
  std::vector<LocOpSeq> Seqs = {
      {},
      {LocOp::read()},
      {LocOp::add(1)},
      {LocOp::add(-1), LocOp::add(1)},
      {LocOp::read(), LocOp::add(2)},
  };
  for (const LocOpSeq &Mine : Seqs)
    for (const LocOpSeq &Theirs : Seqs) {
      Value Entry = Value::of(int64_t(3));
      SpecVerdict V = specOn(AdtKind::Counter, Entry, Mine, Theirs);
      if (V == SpecVerdict::Abstain)
        continue;
      bool Ref = conflictOnline(Entry, Mine, Theirs);
      EXPECT_EQ(V == SpecVerdict::Conflicts, Ref)
          << sequenceToString(Mine) << " vs " << sequenceToString(Theirs);
    }
}
