//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for janus::serve — the long-running, overload-safe submission
/// service — and its foundations: the MPSC submission queue, the
/// cooperative cancellation tokens, the (client, submission) chaos
/// coordinates, and the engine-level deadline plumbing.
///
/// The load-bearing invariant throughout: every submission receives
/// exactly one terminal reply (committed / failed / deadline /
/// overloaded / cancelled), whatever the service is going through —
/// overload, chaos injection, deadline storms, or a drain hard stop.
///
//===----------------------------------------------------------------------===//

#include "janus/serve/Frontend.h"
#include "janus/serve/Serve.h"
#include "janus/serve/SubmissionQueue.h"
#include "janus/stm/Detector.h"
#include "janus/stm/ThreadedRuntime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

using namespace janus;
using namespace janus::serve;
using namespace janus::core;
using resilience::CancelReason;
using resilience::CancelToken;
using resilience::CancellationTable;

namespace {

/// A Janus instance on the threaded engine with write-set detection (no
/// training needed) and one counter object; the task pool increments it.
struct ServiceWorld {
  Janus J;
  Location Counter;
  std::vector<stm::TaskFn> Pool;

  explicit ServiceWorld(unsigned Threads = 2) : J(makeConfig(Threads)) {
    Counter = Location(J.registry().registerObject("counter"));
    Location C = Counter;
    Pool.push_back([C](stm::TxContext &Tx) { Tx.add(C, 1); });
  }

  static JanusConfig makeConfig(unsigned Threads) {
    JanusConfig Cfg;
    Cfg.Engine = EngineKind::Threaded;
    Cfg.Detector = DetectorKind::WriteSet;
    Cfg.Threads = Threads;
    return Cfg;
  }

  int64_t counterValue() const {
    Value V = J.valueAt(Counter);
    return V.isInt() ? V.asInt() : 0; // Absent until first commit.
  }
};

/// Reply collector: thread-safe sink recording every terminal reply.
struct ReplyLog {
  std::mutex M;
  std::vector<Reply> All;

  std::function<void(const Reply &)> sink() {
    return [this](const Reply &R) {
      std::lock_guard<std::mutex> G(M);
      All.push_back(R);
    };
  }

  size_t count(ReplyStatus S) {
    std::lock_guard<std::mutex> G(M);
    size_t N = 0;
    for (const Reply &R : All)
      N += R.Status == S ? 1 : 0;
    return N;
  }

  /// True when every (client, subid) appears exactly once.
  bool exactlyOnce() {
    std::lock_guard<std::mutex> G(M);
    std::set<std::pair<uint64_t, uint64_t>> Seen;
    for (const Reply &R : All)
      if (!Seen.insert({R.Client, R.SubId}).second)
        return false;
    return true;
  }
};

} // namespace

// ---------------------------------------------------------------------------
// MPSC submission queue.
// ---------------------------------------------------------------------------

TEST(MpscQueueTest, FifoSingleProducer) {
  MpscQueue<int> Q;
  EXPECT_EQ(Q.sizeApprox(), 0u);
  for (int I = 0; I != 100; ++I)
    Q.push(int(I));
  EXPECT_EQ(Q.sizeApprox(), 100u);
  int V = -1;
  for (int I = 0; I != 100; ++I) {
    ASSERT_TRUE(Q.pop(V));
    EXPECT_EQ(V, I);
  }
  EXPECT_FALSE(Q.pop(V));
  EXPECT_EQ(Q.sizeApprox(), 0u);
}

TEST(MpscQueueTest, ConcurrentProducersLoseNothing) {
  MpscQueue<uint64_t> Q;
  const int Producers = 4, PerProducer = 5000;
  std::vector<std::thread> Ts;
  for (int P = 0; P != Producers; ++P)
    Ts.emplace_back([&Q, P] {
      for (int I = 0; I != PerProducer; ++I)
        Q.push(uint64_t(P) * PerProducer + I);
    });

  // Consume concurrently with production; per-producer order must hold.
  std::vector<uint64_t> NextExpected(Producers, 0);
  size_t Got = 0;
  while (Got != size_t(Producers) * PerProducer) {
    uint64_t V;
    if (!Q.pop(V)) {
      std::this_thread::yield();
      continue;
    }
    ++Got;
    uint64_t P = V / PerProducer, I = V % PerProducer;
    EXPECT_EQ(I, NextExpected[P]) << "producer " << P << " reordered";
    NextExpected[P] = I + 1;
  }
  for (std::thread &T : Ts)
    T.join();
  uint64_t V;
  EXPECT_FALSE(Q.pop(V));
}

// ---------------------------------------------------------------------------
// Cancellation tokens.
// ---------------------------------------------------------------------------

TEST(CancellationTest, DeadlineExpiryAndFirstCancelWins) {
  CancelToken T;
  EXPECT_EQ(T.status(), CancelReason::None);
  T.setDeadlineUs(CancelToken::nowUs() - 1); // Already past.
  EXPECT_EQ(T.status(), CancelReason::Deadline);

  CancelToken U;
  U.cancel(CancelReason::Deadline);
  U.cancel(CancelReason::Shutdown); // Late reason must not overwrite.
  EXPECT_EQ(U.status(), CancelReason::Deadline);
}

TEST(CancellationTest, GlobalShutdownDominatesPerTaskTokens) {
  CancellationTable Table(3);
  EXPECT_EQ(Table.status(2), CancelReason::None);
  Table.task(2)->setDeadlineUs(CancelToken::nowUs() - 1);
  EXPECT_EQ(Table.status(2), CancelReason::Deadline);
  EXPECT_EQ(Table.status(1), CancelReason::None);
  Table.global().cancel(CancelReason::Shutdown);
  EXPECT_EQ(Table.status(1), CancelReason::Shutdown);
  EXPECT_EQ(Table.status(2), CancelReason::Shutdown);
  // Out-of-range ids see only the global token.
  EXPECT_EQ(Table.status(99), CancelReason::Shutdown);
  EXPECT_EQ(Table.task(99), nullptr);
}

// ---------------------------------------------------------------------------
// Client-coordinate chaos clauses.
// ---------------------------------------------------------------------------

TEST(FaultPlanClientCoordsTest, ParsesRoundTripsAndStaysEngineInvisible) {
  std::string Err;
  std::optional<resilience::FaultPlan> P = resilience::FaultPlan::parse(
      "shed@*:7;throw@3:1;acquiredelay@*.1=200", &Err);
  ASSERT_TRUE(P.has_value()) << Err;

  // Admission-time queries.
  EXPECT_TRUE(P->shedSubmission(4, 7));
  EXPECT_TRUE(P->shedSubmission(1, 7));
  EXPECT_FALSE(P->shedSubmission(4, 8));
  using FK = resilience::FaultAction::Kind;
  EXPECT_NE(P->clientMatch(FK::ThrowTask, 3, 1), nullptr);
  EXPECT_EQ(P->clientMatch(FK::ThrowTask, 3, 2), nullptr);
  EXPECT_EQ(P->clientMatch(FK::ThrowTask, 2, 1), nullptr);

  // Engine isolation: a client-coordinate throw must never fire as a
  // task-coordinate throw, even at numerically identical coordinates.
  EXPECT_FALSE(P->throwTask(3, 1));
  EXPECT_EQ(P->acquireDelay(5, 1), 200u); // Task coords still work.

  // Round trip through the grammar.
  std::optional<resilience::FaultPlan> Q =
      resilience::FaultPlan::parse(P->toString(), &Err);
  ASSERT_TRUE(Q.has_value()) << P->toString() << ": " << Err;
  EXPECT_EQ(Q->toString(), P->toString());

  // Malformed coordinate mixes are rejected.
  EXPECT_FALSE(resilience::FaultPlan::parse("shed@1.2", &Err).has_value());
  EXPECT_FALSE(
      resilience::FaultPlan::parse("acquiredelay@1:2=5", &Err).has_value());
}

// ---------------------------------------------------------------------------
// Service behaviour.
// ---------------------------------------------------------------------------

TEST(ServiceTest, EverySubmissionCommitsAndGetsOneReply) {
  ServiceWorld World;
  ServeConfig SC;
  SC.BatchMax = 8;
  Service S(World.J, World.Pool, SC);
  ReplyLog Log;
  S.setReplySink(Log.sink());

  const int N = 40;
  for (int I = 0; I != N; ++I)
    EXPECT_TRUE(S.submit(/*Client=*/1 + (I % 3), /*SubId=*/I, 0));
  S.requestStop();
  S.serve();

  ServeReport R = S.report();
  EXPECT_TRUE(R.clean());
  EXPECT_EQ(R.Received, uint64_t(N));
  EXPECT_EQ(R.Committed, uint64_t(N));
  EXPECT_EQ(R.Replies, uint64_t(N));
  EXPECT_TRUE(R.DrainedInTime);
  EXPECT_TRUE(Log.exactlyOnce());
  EXPECT_EQ(Log.count(ReplyStatus::Committed), size_t(N));
  EXPECT_EQ(World.counterValue(), N);
}

TEST(ServiceTest, ExpiredDeadlinesGetDeadlineReplies) {
  ServiceWorld World;
  Service S(World.J, World.Pool, ServeConfig{});
  ReplyLog Log;
  S.setReplySink(Log.sink());

  // 1µs deadlines, long expired by the time the scheduler dequeues.
  for (int I = 0; I != 10; ++I)
    S.submit(1, I, 0, /*DeadlineRelUs=*/1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  S.requestStop();
  S.serve();

  ServeReport R = S.report();
  EXPECT_TRUE(R.clean());
  EXPECT_EQ(R.DeadlineFailures, 10u);
  EXPECT_EQ(Log.count(ReplyStatus::Deadline), 10u);
  EXPECT_EQ(World.counterValue(), 0);
}

TEST(ServiceTest, QueueAndLaneCapsShedOverloaded) {
  ServiceWorld World;
  ServeConfig SC;
  SC.QueueCap = 8;
  SC.LaneCap = 64;
  Service S(World.J, World.Pool, SC);
  ReplyLog Log;
  S.setReplySink(Log.sink());

  // Flood before the scheduler runs: everything past the queue cap is
  // shed with a structured Overloaded reply, immediately.
  const int N = 50;
  int Admitted = 0;
  for (int I = 0; I != N; ++I)
    Admitted += S.submit(1, I, 0) ? 1 : 0;
  EXPECT_LE(Admitted, 9); // sizeApprox may lag by one mid-push.
  ServeReport Mid = S.report();
  EXPECT_EQ(Mid.Sheds, uint64_t(N - Admitted));
  EXPECT_EQ(Log.count(ReplyStatus::Overloaded), size_t(N - Admitted));

  S.requestStop();
  S.serve();
  ServeReport R = S.report();
  EXPECT_TRUE(R.clean());
  EXPECT_EQ(R.Replies, uint64_t(N));
  EXPECT_TRUE(Log.exactlyOnce());

  // Per-client lane cap, independently of the global queue.
  ServiceWorld World2;
  ServeConfig SC2;
  SC2.QueueCap = 1024;
  SC2.LaneCap = 4;
  Service S2(World2.J, World2.Pool, SC2);
  ReplyLog Log2;
  S2.setReplySink(Log2.sink());
  for (int I = 0; I != 10; ++I)
    S2.submit(7, I, 0);
  EXPECT_EQ(S2.report().Sheds, 6u);
  S2.requestStop();
  S2.serve();
  EXPECT_TRUE(S2.report().clean());
}

TEST(ServiceTest, ChaosPlanShedsDeterministically) {
  ServiceWorld World;
  {
    std::string Err;
    std::optional<resilience::FaultPlan> Plan =
        resilience::FaultPlan::parse("shed@1:2", &Err);
    ASSERT_TRUE(Plan.has_value()) << Err;
    World.J.setFaults(std::move(*Plan));
  }
  Service S(World.J, World.Pool, ServeConfig{});
  ReplyLog Log;
  S.setReplySink(Log.sink());

  // Client 1's second submission is shed by the plan; client 2's is not.
  EXPECT_TRUE(S.submit(1, 100, 0));
  EXPECT_FALSE(S.submit(1, 101, 0));
  EXPECT_TRUE(S.submit(2, 200, 0));
  EXPECT_TRUE(S.submit(2, 201, 0));
  S.requestStop();
  S.serve();

  ServeReport R = S.report();
  EXPECT_TRUE(R.clean());
  EXPECT_EQ(R.Sheds, 1u);
  EXPECT_EQ(R.Committed, 3u);
  EXPECT_EQ(Log.count(ReplyStatus::Overloaded), 1u);
}

TEST(ServiceTest, DrainHardDeadlineCancelsTheBacklog) {
  ServiceWorld World;
  // A slow task pool so the backlog outlives the (immediate) hard stop.
  Location C = World.Counter;
  World.Pool.clear();
  World.Pool.push_back([C](stm::TxContext &Tx) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Tx.add(C, 1);
  });
  ServeConfig SC;
  SC.BatchMax = 2;
  SC.DrainHardUs = 1000; // 1ms: expires while the backlog is deep.
  SC.WatchdogPeriodUs = 500;
  Service S(World.J, World.Pool, SC);
  ReplyLog Log;
  S.setReplySink(Log.sink());

  const int N = 60;
  for (int I = 0; I != N; ++I)
    S.submit(1 + (I % 2), I, 0);
  S.requestStop();
  S.serve();

  ServeReport R = S.report();
  EXPECT_TRUE(R.clean());
  EXPECT_EQ(R.Replies, uint64_t(N));
  EXPECT_FALSE(R.DrainedInTime);
  EXPECT_GT(R.DrainedInflight, 0u);
  EXPECT_EQ(Log.count(ReplyStatus::Cancelled), size_t(R.DrainedInflight));
  EXPECT_TRUE(Log.exactlyOnce());
}

TEST(ServiceTest, WatchdogEscalatesOnStalledProgress) {
  ServiceWorld World;
  // One long-running task: no commit ticks while it runs, so the
  // watchdog must walk the escalation ladder.
  Location C = World.Counter;
  World.Pool.clear();
  World.Pool.push_back([C](stm::TxContext &Tx) {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    Tx.add(C, 1);
  });
  ServeConfig SC;
  SC.WatchdogPeriodUs = 2000;
  SC.StallEscalateUs = 10000;
  Service S(World.J, World.Pool, SC);
  ReplyLog Log;
  S.setReplySink(Log.sink());

  S.submit(1, 0, 0);
  S.requestStop();
  S.serve();

  ServeReport R = S.report();
  EXPECT_TRUE(R.clean());
  EXPECT_GE(R.WatchdogEscalations, 1u);
  EXPECT_EQ(R.Committed, 1u);
  // Progress after the batch decays the level back down (never stuck
  // at forced-serial with a healthy engine).
  EXPECT_LE(S.pressure().EscalationLevel.load(), 2u);
}

// The headline invariant under fire: concurrent producers, chaos plan
// injecting aborts, throws, delays and sheds, deadlines on some
// submissions — exactly one terminal reply each, and the service stays
// up through all of it.
TEST(ServiceTest, ExactlyOneReplyPerSubmissionUnderChaos) {
  ServiceWorld World(/*Threads=*/4);
  {
    std::string Err;
    std::optional<resilience::FaultPlan> Plan = resilience::FaultPlan::parse(
        "abort@*.1;delay@*.2=2;shed@*:5;throw@2:3", &Err);
    ASSERT_TRUE(Plan.has_value()) << Err;
    World.J.setFaults(std::move(*Plan));
  }
  ServeConfig SC;
  SC.BatchMax = 16;
  SC.DrainHardUs = 10000000; // Generous: the drain must finish clean.
  Service S(World.J, World.Pool, SC);
  ReplyLog Log;
  S.setReplySink(Log.sink());

  const int Producers = 3, PerProducer = 120;
  std::vector<std::thread> Ts;
  for (int P = 0; P != Producers; ++P)
    Ts.emplace_back([&S, P] {
      for (int I = 0; I != PerProducer; ++I) {
        // Every 7th submission carries a tight-but-feasible deadline.
        S.submit(uint64_t(P + 1), uint64_t(I),
                 /*TaskIndex=*/uint32_t(I),
                 /*DeadlineRelUs=*/(I % 7 == 0) ? 50000 : 0);
        if (I % 16 == 0)
          std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });

  std::thread Runner([&S] { S.serve(); });
  for (std::thread &T : Ts)
    T.join();
  S.requestStop();
  Runner.join();

  ServeReport R = S.report();
  EXPECT_TRUE(R.clean()) << "received=" << R.Received
                         << " replies=" << R.Replies;
  EXPECT_EQ(R.Received, uint64_t(Producers * PerProducer));
  EXPECT_GT(R.Sheds, 0u);     // shed@*:5 fired per client.
  EXPECT_GT(R.Committed, 0u);
  EXPECT_TRUE(Log.exactlyOnce());
  // Terminal statuses partition the replies.
  EXPECT_EQ(Log.count(ReplyStatus::Committed) +
                Log.count(ReplyStatus::Failed) +
                Log.count(ReplyStatus::Deadline) +
                Log.count(ReplyStatus::Overloaded) +
                Log.count(ReplyStatus::Cancelled),
            size_t(R.Replies));
}

// ---------------------------------------------------------------------------
// Engine-level deadline plumbing (below the service).
// ---------------------------------------------------------------------------

TEST(ThreadedCancellationTest, ExpiredDeadlineFailsTaskKeepingClockDense) {
  ObjectRegistry Reg;
  ObjectId Counter = Reg.registerObject("counter");
  stm::WriteSetDetector D;
  stm::ThreadedConfig Cfg;
  Cfg.NumThreads = 2;
  CancellationTable Table(4);
  Table.task(2)->setDeadlineUs(CancelToken::nowUs() - 1); // Pre-expired.
  Cfg.Cancel = &Table;
  stm::ThreadedRuntime R(Reg, D, Cfg);

  std::vector<stm::TaskFn> Tasks(4, [Counter](stm::TxContext &Tx) {
    Tx.add(Location(Counter), 1);
  });
  R.run(Tasks);

  // Task 2 fails with a Deadline kind; the other three commit real
  // effects; the placeholder keeps the clock dense (4 commit ticks).
  ASSERT_EQ(R.failures().size(), 1u);
  EXPECT_EQ(R.failures()[0].Tid, 2u);
  EXPECT_EQ(R.failures()[0].FailKind,
            resilience::TaskFailure::Kind::Deadline);
  EXPECT_EQ(R.stats().CancelledTasks.load(), 1u);
  EXPECT_EQ(R.stats().Commits.load(), 4u);
  EXPECT_EQ(R.commitOrder().size(), 4u);
  EXPECT_EQ(stm::snapshotValue(R.sharedState(), Location(Counter)).asInt(),
            3);
}
