//===----------------------------------------------------------------------===//
///
/// \file
/// Unit, integration and property tests for the STM runtime (paper §4):
/// transaction contexts, logs, the write-set detector, the threaded
/// protocol of Figure 7 and the deterministic virtual-time simulator.
///
//===----------------------------------------------------------------------===//

#include "janus/stm/Detector.h"
#include "janus/stm/SimRuntime.h"
#include "janus/stm/ThreadedRuntime.h"
#include "janus/support/Rng.h"

#include <gtest/gtest.h>

using namespace janus;
using namespace janus::stm;
using symbolic::LocOp;
using symbolic::LocOpKind;

namespace {

/// Common fixture state: a registry with a couple of scalar objects.
struct World {
  ObjectRegistry Reg;
  ObjectId Work, Flag, Arr;
  World() {
    Work = Reg.registerObject("work");
    Flag = Reg.registerObject("flag");
    Arr = Reg.registerObject("arr", "arr.elem");
  }
};

} // namespace

// ---------------------------------------------------------------------------
// TxContext.
// ---------------------------------------------------------------------------

TEST(TxContextTest, ReadsSeeOwnWrites) {
  World W;
  TxContext Tx(Snapshot(), 1, W.Reg);
  Location L(W.Work);
  EXPECT_EQ(Tx.read(L), Value::absent());
  Tx.write(L, Value::of(5));
  EXPECT_EQ(Tx.read(L), Value::of(5));
  Tx.add(L, 3);
  EXPECT_EQ(Tx.read(L), Value::of(8));
}

TEST(TxContextTest, EntrySnapshotIsImmutable) {
  World W;
  Snapshot Init;
  Init = Init.set(Location(W.Work), Value::of(10));
  TxContext Tx(Init, 1, W.Reg);
  Tx.write(Location(W.Work), Value::of(99));
  EXPECT_EQ(snapshotValue(Tx.entrySnapshot(), Location(W.Work)),
            Value::of(10));
  EXPECT_EQ(snapshotValue(Tx.privatizedState(), Location(W.Work)),
            Value::of(99));
}

TEST(TxContextTest, LogRecordsAllAccessesInOrder) {
  World W;
  TxContext Tx(Snapshot(), 1, W.Reg);
  Location L(W.Work);
  Tx.read(L);
  Tx.add(L, 2);
  Tx.write(L, Value::of(7));
  ASSERT_EQ(Tx.log().size(), 3u);
  EXPECT_EQ(Tx.log()[0].Op.Kind, LocOpKind::Read);
  EXPECT_EQ(Tx.log()[1].Op.Kind, LocOpKind::Add);
  EXPECT_EQ(Tx.log()[2].Op.Kind, LocOpKind::Write);
  EXPECT_EQ(Tx.log()[2].Op.Operand, Value::of(7));
  // The logged read result is the observed value.
  EXPECT_EQ(Tx.log()[0].Op.ReadResult, Value::absent());
}

TEST(TxContextTest, LocalWorkAccumulates) {
  World W;
  TxContext Tx(Snapshot(), 1, W.Reg);
  Tx.localWork(2.5);
  Tx.localWork(1.5);
  EXPECT_DOUBLE_EQ(Tx.virtualCost(), 4.0);
}

TEST(AccessSetsTest, AddCountsAsReadAndWrite) {
  World W;
  TxLog Log{{Location(W.Work), LocOp::add(1)},
            {Location(W.Flag), LocOp::read()},
            {Location(W.Arr, 3), LocOp::write(Value::of(1))}};
  AccessSets S = accessSets(Log);
  EXPECT_TRUE(S.Read.count(Location(W.Work)));
  EXPECT_TRUE(S.Write.count(Location(W.Work)));
  EXPECT_TRUE(S.Read.count(Location(W.Flag)));
  EXPECT_FALSE(S.Write.count(Location(W.Flag)));
  EXPECT_TRUE(S.Write.count(Location(W.Arr, 3)));
}

// ---------------------------------------------------------------------------
// Write-set detector.
// ---------------------------------------------------------------------------

TEST(WriteSetDetectorTest, EmptyHistoryNeverConflicts) {
  World W;
  WriteSetDetector D;
  TxLog Mine{{Location(W.Work), LocOp::write(Value::of(1))}};
  EXPECT_FALSE(D.detectConflicts(Snapshot(), Mine, {}, W.Reg));
}

TEST(WriteSetDetectorTest, WriteWriteAndReadWriteConflict) {
  World W;
  WriteSetDetector D;
  Location L(W.Work);
  auto LogOf = [](std::initializer_list<LogEntry> Es) {
    return std::make_shared<const TxLog>(Es);
  };
  TxLog MyWrite{{L, LocOp::write(Value::of(1))}};
  TxLog MyRead{{L, LocOp::read()}};

  EXPECT_TRUE(D.detectConflicts(Snapshot(), MyWrite,
                                {LogOf({{L, LocOp::write(Value::of(2))}})},
                                W.Reg));
  EXPECT_TRUE(D.detectConflicts(Snapshot(), MyRead,
                                {LogOf({{L, LocOp::write(Value::of(2))}})},
                                W.Reg));
  EXPECT_TRUE(D.detectConflicts(Snapshot(), MyWrite,
                                {LogOf({{L, LocOp::read()}})}, W.Reg));
  // Read-read does not conflict.
  EXPECT_FALSE(D.detectConflicts(Snapshot(), MyRead,
                                 {LogOf({{L, LocOp::read()}})}, W.Reg));
  // Disjoint locations do not conflict.
  EXPECT_FALSE(D.detectConflicts(
      Snapshot(), MyWrite, {LogOf({{Location(W.Flag), LocOp::write(Value::of(2))}})},
      W.Reg));
}

TEST(WriteSetDetectorTest, AddIsAReadModifyWrite) {
  World W;
  WriteSetDetector D;
  Location L(W.Work);
  TxLog MyAdd{{L, LocOp::add(1)}};
  auto Their = std::make_shared<const TxLog>(TxLog{{L, LocOp::add(2)}});
  // The write-set heuristic cannot see that adds commute.
  EXPECT_TRUE(D.detectConflicts(Snapshot(), MyAdd, {Their}, W.Reg));
}

// ---------------------------------------------------------------------------
// Threaded runtime (Figure 7).
// ---------------------------------------------------------------------------

TEST(ThreadedRuntimeTest, SingleTaskCommits) {
  World W;
  WriteSetDetector D;
  ThreadedRuntime R(W.Reg, D, ThreadedConfig{1, false, false});
  R.run({[&W](TxContext &Tx) { Tx.write(Location(W.Work), Value::of(42)); }});
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Work)), Value::of(42));
  EXPECT_EQ(R.stats().Commits.load(), 1u);
  EXPECT_EQ(R.stats().Retries.load(), 0u);
}

TEST(ThreadedRuntimeTest, AtomicityOfReadModifyWrite) {
  // The classic lost-update test: N tasks each read x and write x+1.
  // Under any interleaving the final value must be N.
  World W;
  WriteSetDetector D;
  ThreadedRuntime R(W.Reg, D, ThreadedConfig{4, false, false});
  const int N = 60;
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != N; ++I)
    Tasks.push_back([&W](TxContext &Tx) {
      Location L(W.Work);
      Value V = Tx.read(L);
      int64_t Cur = V.isAbsent() ? 0 : V.asInt();
      Tx.write(L, Value::of(Cur + 1));
    });
  R.run(Tasks);
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Work)), Value::of(N));
  EXPECT_EQ(R.stats().Commits.load(), static_cast<uint64_t>(N));
}

TEST(ThreadedRuntimeTest, SemanticAddsReplayCorrectly) {
  World W;
  WriteSetDetector D;
  ThreadedRuntime R(W.Reg, D, ThreadedConfig{4, false, false});
  const int N = 50;
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != N; ++I)
    Tasks.push_back([&W, I](TxContext &Tx) {
      Tx.add(Location(W.Work), I + 1);
    });
  R.run(Tasks);
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Work)),
            Value::of(N * (N + 1) / 2));
}

TEST(ThreadedRuntimeTest, OrderedRunMatchesSequentialFinalState) {
  // Tasks write their id to a shared cell; in-order execution must end
  // with the last task's id, exactly like the sequential loop.
  for (unsigned Threads : {1u, 2u, 4u}) {
    World W;
    WriteSetDetector D;
    ThreadedRuntime R(W.Reg, D, ThreadedConfig{Threads, true, false});
    const int N = 25;
    std::vector<TaskFn> Tasks;
    for (int I = 1; I <= N; ++I)
      Tasks.push_back([&W, I](TxContext &Tx) {
        Tx.write(Location(W.Flag), Value::of(I));
        Tx.add(Location(W.Work), I);
      });
    R.run(Tasks);
    EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Flag)), Value::of(N))
        << Threads << " threads";
    EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Work)),
              Value::of(N * (N + 1) / 2));
  }
}

TEST(ThreadedRuntimeTest, StatePersistsAcrossRuns) {
  World W;
  WriteSetDetector D;
  ThreadedRuntime R(W.Reg, D, ThreadedConfig{2, true, false});
  R.run({[&W](TxContext &Tx) { Tx.add(Location(W.Work), 5); }});
  R.run({[&W](TxContext &Tx) { Tx.add(Location(W.Work), 7); },
         [&W](TxContext &Tx) { Tx.add(Location(W.Work), 1); }});
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Work)), Value::of(13));
  EXPECT_EQ(R.stats().Commits.load(), 3u);
}

TEST(ThreadedRuntimeTest, LogReclamationBoundsHistory) {
  World W;
  WriteSetDetector D;
  ThreadedRuntime NoReclaim(W.Reg, D, ThreadedConfig{1, false, false});
  ThreadedRuntime Reclaim(W.Reg, D, ThreadedConfig{1, false, true});
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != 30; ++I)
    Tasks.push_back([&W](TxContext &Tx) { Tx.add(Location(W.Work), 1); });
  NoReclaim.run(Tasks);
  Reclaim.run(Tasks);
  EXPECT_EQ(NoReclaim.historySize(), 30u);
  // With a single thread no transaction overlaps another, so every log
  // is reclaimable as soon as it commits.
  EXPECT_LE(Reclaim.historySize(), 1u);
  EXPECT_EQ(snapshotValue(Reclaim.sharedState(), Location(W.Work)),
            snapshotValue(NoReclaim.sharedState(), Location(W.Work)));
}

/// Property: across thread counts and seeds, running random counter /
/// cell workloads ordered yields exactly the sequential final state.
class ThreadedSerializability
    : public ::testing::TestWithParam<std::tuple<unsigned, uint64_t>> {};

TEST_P(ThreadedSerializability, OrderedEqualsSequential) {
  auto [Threads, Seed] = GetParam();
  Rng R(Seed);
  World W;

  // Build random tasks over three locations.
  const int N = 30;
  struct Step {
    int Kind; // 0 read, 1 write, 2 add
    int LocIdx;
    int64_t Val;
  };
  std::vector<std::vector<Step>> Programs;
  for (int I = 0; I != N; ++I) {
    std::vector<Step> P;
    for (int J = 0, E = 1 + static_cast<int>(R.below(5)); J != E; ++J)
      P.push_back(Step{static_cast<int>(R.below(3)),
                       static_cast<int>(R.below(3)), R.range(-5, 5)});
    Programs.push_back(P);
  }

  auto MakeTask = [&W](const std::vector<Step> &P) -> TaskFn {
    return [&W, &P](TxContext &Tx) {
      Location Locs[3] = {Location(W.Work), Location(W.Flag),
                          Location(W.Arr, 0)};
      for (const Step &S : P) {
        if (S.Kind == 0)
          Tx.read(Locs[S.LocIdx]);
        else if (S.Kind == 1)
          Tx.write(Locs[S.LocIdx], Value::of(S.Val));
        else
          Tx.add(Locs[S.LocIdx], S.Val);
      }
    };
  };

  std::vector<TaskFn> Tasks;
  for (const auto &P : Programs)
    Tasks.push_back(MakeTask(P));

  // Sequential reference.
  WriteSetDetector DSeq;
  ThreadedRuntime Seq(W.Reg, DSeq, ThreadedConfig{1, false, false});
  Seq.run(Tasks);

  WriteSetDetector DPar;
  ThreadedRuntime Par(W.Reg, DPar, ThreadedConfig{Threads, true, false});
  Par.run(Tasks);

  EXPECT_TRUE(Par.sharedState() == Seq.sharedState());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThreadedSerializability,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(1u, 2u, 3u)));

// ---------------------------------------------------------------------------
// Simulator.
// ---------------------------------------------------------------------------

TEST(SimRuntimeTest, FinalStateMatchesThreadedSemantics) {
  World W;
  WriteSetDetector D;
  SimConfig C;
  C.NumCores = 4;
  SimRuntime R(W.Reg, D, C);
  const int N = 40;
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != N; ++I)
    Tasks.push_back([&W](TxContext &Tx) {
      Location L(W.Work);
      Value V = Tx.read(L);
      Tx.write(L, Value::of((V.isAbsent() ? 0 : V.asInt()) + 1));
    });
  SimOutcome O = R.run(Tasks);
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Work)), Value::of(N));
  EXPECT_GT(O.ParallelTime, 0.0);
  EXPECT_GT(O.SequentialTime, 0.0);
  EXPECT_EQ(R.stats().Commits.load(), static_cast<uint64_t>(N));
  // Contended read-modify-write tasks abort under write-set detection.
  EXPECT_GT(R.stats().Retries.load(), 0u);
}

TEST(SimRuntimeTest, DeterministicAcrossRuns) {
  auto RunOnce = [](uint64_t &Retries, double &Par, Value &Final) {
    World W;
    WriteSetDetector D;
    SimConfig C;
    C.NumCores = 8;
    SimRuntime R(W.Reg, D, C);
    std::vector<TaskFn> Tasks;
    for (int I = 0; I != 30; ++I)
      Tasks.push_back([&W, I](TxContext &Tx) {
        Tx.localWork(static_cast<double>(I % 5));
        Value V = Tx.read(Location(W.Work));
        Tx.write(Location(W.Work),
                 Value::of((V.isAbsent() ? 0 : V.asInt()) + 1));
      });
    SimOutcome O = R.run(Tasks);
    Retries = R.stats().Retries.load();
    Par = O.ParallelTime;
    Final = snapshotValue(R.sharedState(), Location(W.Work));
  };
  uint64_t R1, R2;
  double P1, P2;
  Value F1, F2;
  RunOnce(R1, P1, F1);
  RunOnce(R2, P2, F2);
  EXPECT_EQ(R1, R2);
  EXPECT_DOUBLE_EQ(P1, P2);
  EXPECT_EQ(F1, F2);
}

TEST(SimRuntimeTest, DisjointTasksScaleWithCores) {
  // Tasks touching disjoint locations never conflict; more cores must
  // shorten the makespan substantially.
  auto MakeSpan = [](unsigned Cores) {
    World W;
    WriteSetDetector D;
    SimConfig C;
    C.NumCores = Cores;
    SimRuntime R(W.Reg, D, C);
    std::vector<TaskFn> Tasks;
    for (int I = 0; I != 64; ++I)
      Tasks.push_back([&W, I](TxContext &Tx) {
        Tx.localWork(20.0);
        Tx.write(Location(W.Arr, I), Value::of(I));
      });
    return R.run(Tasks).ParallelTime;
  };
  double T1 = MakeSpan(1), T4 = MakeSpan(4), T8 = MakeSpan(8);
  EXPECT_GT(T1 / T4, 3.0);
  EXPECT_GT(T4 / T8, 1.5);
}

TEST(SimRuntimeTest, ContendedTasksDoNotScale) {
  // All tasks read-modify-write one location: write-set detection
  // serializes them and wasted retries make 8 cores no better than ~1.
  auto Speedup = [](unsigned Cores) {
    World W;
    WriteSetDetector D;
    SimConfig C;
    C.NumCores = Cores;
    SimRuntime R(W.Reg, D, C);
    std::vector<TaskFn> Tasks;
    for (int I = 0; I != 40; ++I)
      Tasks.push_back([&W](TxContext &Tx) {
        Tx.localWork(5.0);
        Value V = Tx.read(Location(W.Work));
        Tx.write(Location(W.Work),
                 Value::of((V.isAbsent() ? 0 : V.asInt()) + 1));
      });
    return R.run(Tasks).speedup();
  };
  EXPECT_LT(Speedup(8), 1.2);
}

TEST(SimRuntimeTest, OrderedSimMatchesSequentialFinalState) {
  World W;
  WriteSetDetector D;
  SimConfig C;
  C.NumCores = 4;
  C.Ordered = true;
  SimRuntime R(W.Reg, D, C);
  const int N = 20;
  std::vector<TaskFn> Tasks;
  for (int I = 1; I <= N; ++I)
    Tasks.push_back([&W, I](TxContext &Tx) {
      Tx.write(Location(W.Flag), Value::of(I));
    });
  R.run(Tasks);
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Flag)), Value::of(N));
  EXPECT_EQ(R.stats().Commits.load(), static_cast<uint64_t>(N));
}

TEST(SimRuntimeTest, SpeedupReflectsInstrumentationOverheadOnOneCore) {
  // On a single core the parallel version pays STM overhead with no
  // parallelism: speedup must be below 1.
  World W;
  WriteSetDetector D;
  SimConfig C;
  C.NumCores = 1;
  SimRuntime R(W.Reg, D, C);
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != 20; ++I)
    Tasks.push_back([&W, I](TxContext &Tx) {
      Tx.localWork(2.0);
      Tx.write(Location(W.Arr, I), Value::of(I));
    });
  SimOutcome O = R.run(Tasks);
  EXPECT_LT(O.speedup(), 1.0);
}

// ---------------------------------------------------------------------------
// Additional protocol edge cases.
// ---------------------------------------------------------------------------

TEST(ThreadedRuntimeTest, HighThreadCountStress) {
  World W;
  WriteSetDetector D;
  ThreadedRuntime R(W.Reg, D, ThreadedConfig{8, false, false});
  const int N = 200;
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != N; ++I)
    Tasks.push_back([&W, I](TxContext &Tx) {
      // Mix of private and shared work.
      Tx.write(Location(W.Arr, I), Value::of(I));
      Value V = Tx.read(Location(W.Work));
      Tx.write(Location(W.Work), Value::of((V.isAbsent() ? 0 : V.asInt()) + 1));
    });
  R.run(Tasks);
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Work)), Value::of(N));
  for (int I = 0; I != N; ++I)
    EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Arr, I)),
              Value::of(I));
}

TEST(ThreadedRuntimeTest, CommitOrderCoversEveryTaskExactlyOnce) {
  World W;
  WriteSetDetector D;
  ThreadedRuntime R(W.Reg, D, ThreadedConfig{4, false, false});
  const int N = 40;
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != N; ++I)
    Tasks.push_back([&W](TxContext &Tx) { Tx.add(Location(W.Work), 1); });
  R.run(Tasks);
  std::vector<uint32_t> Order = R.commitOrder();
  ASSERT_EQ(Order.size(), static_cast<size_t>(N));
  std::vector<bool> Seen(N + 1, false);
  for (uint32_t Tid : Order) {
    ASSERT_GE(Tid, 1u);
    ASSERT_LE(Tid, static_cast<uint32_t>(N));
    EXPECT_FALSE(Seen[Tid]) << "task committed twice";
    Seen[Tid] = true;
  }
}

TEST(SimRuntimeTest, EmptyTaskListIsANoop) {
  World W;
  WriteSetDetector D;
  SimConfig C;
  SimRuntime R(W.Reg, D, C);
  SimOutcome O = R.run({});
  EXPECT_EQ(O.ParallelTime, 0.0);
  EXPECT_EQ(O.SequentialTime, 0.0);
  EXPECT_EQ(R.stats().Commits.load(), 0u);
}

TEST(SimRuntimeTest, TasksWithEmptyLogsCommitImmediately) {
  World W;
  WriteSetDetector D;
  SimConfig C;
  C.NumCores = 2;
  SimRuntime R(W.Reg, D, C);
  std::vector<TaskFn> Tasks(5, [](TxContext &Tx) { Tx.localWork(1.0); });
  SimOutcome O = R.run(Tasks);
  EXPECT_EQ(R.stats().Commits.load(), 5u);
  EXPECT_EQ(R.stats().Retries.load(), 0u);
  EXPECT_GT(O.ParallelTime, 0.0);
}

TEST(SimRuntimeTest, CostModelKnobsShiftTheBalance) {
  // Raising the sequential per-op cost (i.e. lowering the relative
  // instrumentation overhead) must increase the measured speedup.
  auto SpeedupWith = [](double SeqPerOp) {
    World W;
    WriteSetDetector D;
    SimConfig C;
    C.NumCores = 8;
    C.Costs.SeqPerOp = SeqPerOp;
    SimRuntime R(W.Reg, D, C);
    std::vector<TaskFn> Tasks;
    for (int I = 0; I != 32; ++I)
      Tasks.push_back([&W, I](TxContext &Tx) {
        Tx.localWork(5.0);
        Tx.write(Location(W.Arr, I), Value::of(I));
      });
    return R.run(Tasks).speedup();
  };
  EXPECT_LT(SpeedupWith(0.1), SpeedupWith(0.8));
}

TEST(SimRuntimeTest, OrderedRunWithConflictsStillCommitsInOrder) {
  World W;
  WriteSetDetector D;
  SimConfig C;
  C.NumCores = 4;
  C.Ordered = true;
  SimRuntime R(W.Reg, D, C);
  const int N = 15;
  std::vector<TaskFn> Tasks;
  for (int I = 1; I <= N; ++I)
    Tasks.push_back([&W, I](TxContext &Tx) {
      Value V = Tx.read(Location(W.Work));
      Tx.write(Location(W.Work),
               Value::of((V.isAbsent() ? 0 : V.asInt()) + I));
    });
  R.run(Tasks);
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Work)),
            Value::of(N * (N + 1) / 2));
  std::vector<uint32_t> Order = R.commitOrder();
  for (size_t I = 0; I != Order.size(); ++I)
    EXPECT_EQ(Order[I], I + 1);
}

// ---------------------------------------------------------------------------
// Audit trace recording (consumed by janus::analysis).
// ---------------------------------------------------------------------------

TEST(SimRuntimeTest, TraceIsOffByDefault) {
  World W;
  WriteSetDetector D;
  SimRuntime R(W.Reg, D, SimConfig{});
  R.run({[&](TxContext &Tx) { Tx.add(Location(W.Work), 1); }});
  EXPECT_FALSE(R.trace().Recorded);
  EXPECT_TRUE(R.trace().Events.empty());
}

TEST(SimRuntimeTest, TraceRecordsAbortThenRetryWithFreshLogs) {
  // Contended read-modify-writes force aborts under the write-set
  // detector. Every attempt — aborted or committed — must appear in the
  // trace with its own log, and each aborted task must eventually
  // commit with a re-executed (re-read) log, not the stale one.
  World W;
  WriteSetDetector D;
  SimConfig C;
  C.NumCores = 4;
  C.RecordTrace = true;
  SimRuntime R(W.Reg, D, C);
  Location L(W.Work);
  std::vector<TaskFn> Tasks(12, [&](TxContext &Tx) {
    Value V = Tx.read(L);
    Tx.write(L, Value::of((V.isAbsent() ? 0 : V.asInt()) + 1));
  });
  R.run(Tasks);

  const AuditTrace &T = R.trace();
  ASSERT_TRUE(T.Recorded);
  EXPECT_GT(T.abortedCount(), 0u);
  EXPECT_EQ(T.committedInOrder().size(), 12u);
  EXPECT_EQ(T.Events.size(), 12u + T.abortedCount());
  EXPECT_EQ(snapshotValue(T.Final, L), Value::of(int64_t(12)));

  for (const TraceEvent &E : T.Events) {
    ASSERT_TRUE(E.Log != nullptr);
    if (E.Committed)
      continue;
    EXPECT_EQ(E.CommitTime, 0u);
    // The retry that finally commits carries a distinct log object:
    // aborted logs stay valid for post-mortem inspection.
    const TraceEvent *Commit = nullptr;
    for (const TraceEvent &E2 : T.Events)
      if (E2.Committed && E2.Tid == E.Tid)
        Commit = &E2;
    ASSERT_TRUE(Commit != nullptr);
    EXPECT_NE(Commit->Log.get(), E.Log.get());
    EXPECT_GT(Commit->BeginTime, E.BeginTime);
  }
}

TEST(ThreadedRuntimeTest, TraceCoversEveryTaskExactlyOnce) {
  World W;
  WriteSetDetector D;
  ThreadedRuntime R(W.Reg, D,
                    ThreadedConfig{4, false, false, /*RecordTrace=*/true});
  Location L(W.Work);
  std::vector<TaskFn> Tasks(32, [&](TxContext &Tx) { Tx.add(L, 1); });
  R.run(Tasks);

  const AuditTrace &T = R.trace();
  ASSERT_TRUE(T.Recorded);
  auto Committed = T.committedInOrder();
  ASSERT_EQ(Committed.size(), 32u);
  std::vector<bool> Seen(33, false);
  for (const TraceEvent *E : Committed) {
    ASSERT_GE(E->Tid, 1u);
    ASSERT_LE(E->Tid, 32u);
    EXPECT_FALSE(Seen[E->Tid]);
    Seen[E->Tid] = true;
  }
  EXPECT_EQ(snapshotValue(T.Final, L), Value::of(int64_t(32)));
  EXPECT_EQ(snapshotValue(R.sharedState(), L), Value::of(int64_t(32)));
}

TEST(ThreadedRuntimeTest, TraceResetsBetweenRuns) {
  World W;
  WriteSetDetector D;
  ThreadedRuntime R(W.Reg, D,
                    ThreadedConfig{2, false, false, /*RecordTrace=*/true});
  Location L(W.Work);
  std::vector<TaskFn> Tasks(5, [&](TxContext &Tx) { Tx.add(L, 1); });
  R.run(Tasks);
  R.run(Tasks);
  // The trace describes the last run only: 5 commits starting from the
  // first run's final state.
  EXPECT_EQ(R.trace().committedInOrder().size(), 5u);
  EXPECT_EQ(snapshotValue(R.trace().Initial, L), Value::of(int64_t(5)));
  EXPECT_EQ(snapshotValue(R.trace().Final, L), Value::of(int64_t(10)));
}

TEST(ThreadedRuntimeTest, ConcurrentReclamationNeverDropsVisibleLogs) {
  // Races eager log reclamation against many in-flight readers: tiny
  // history segments force the epoch head across segment boundaries
  // constantly, while write-set conflicts on the shared counter keep
  // transactions aborting and re-reading their conflict windows. The
  // HistoryLog reader asserts the window is dense, so a committed log
  // reclaimed while still visible to a live transaction aborts the
  // test rather than passing silently.
  World W;
  WriteSetDetector D;
  ThreadedConfig Cfg;
  Cfg.NumThreads = 8;
  Cfg.ReclaimLogs = true;
  Cfg.HistorySegmentRecords = 4;
  ThreadedRuntime R(W.Reg, D, Cfg);
  const int N = 300;
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != N; ++I)
    Tasks.push_back([&W, I](TxContext &Tx) {
      Tx.add(Location(W.Work), 1);
      Tx.write(Location(W.Arr, I % 16), Value::of(int64_t(I)));
    });
  R.run(Tasks);
  R.run(Tasks); // Second run: reclamation continues across runs.

  EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Work)),
            Value::of(int64_t(2 * N)));
  EXPECT_EQ(R.stats().Commits.load(), static_cast<uint64_t>(2 * N));
  // Every task committed exactly once per run.
  std::vector<int> PerTid(N + 1, 0);
  for (uint32_t Tid : R.commitOrder())
    ++PerTid[Tid];
  for (int I = 1; I <= N; ++I)
    EXPECT_EQ(PerTid[I], 2);
  // With every transaction finished, the final commit reclaimed the
  // whole window behind itself.
  EXPECT_LE(R.historySize(), 8u);
}
