//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the support module: Value, Location, ObjectRegistry,
/// Rng determinism, and TextTable formatting.
///
//===----------------------------------------------------------------------===//

#include "janus/support/Format.h"
#include "janus/support/Location.h"
#include "janus/support/Rng.h"
#include "janus/support/Value.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

using namespace janus;

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::absent().isAbsent());
  EXPECT_TRUE(Value::unit().isUnit());
  EXPECT_TRUE(Value::of(true).isBool());
  EXPECT_TRUE(Value::of(true).asBool());
  EXPECT_FALSE(Value::of(false).asBool());
  EXPECT_EQ(Value::of(int64_t(42)).asInt(), 42);
  EXPECT_EQ(Value::of(7).asInt(), 7);
  EXPECT_EQ(Value::of("abc").asStr(), "abc");
  EXPECT_EQ(Value::of(std::string("xy")).asStr(), "xy");
}

TEST(ValueTest, EqualityDistinguishesKinds) {
  EXPECT_EQ(Value::absent(), Value::absent());
  EXPECT_NE(Value::absent(), Value::unit());
  EXPECT_NE(Value::of(0), Value::of(false));
  EXPECT_NE(Value::of(1), Value::of("1"));
  EXPECT_EQ(Value::of(5), Value::of(int64_t(5)));
  EXPECT_NE(Value::of(5), Value::of(6));
  EXPECT_EQ(Value::of("a"), Value::of(std::string("a")));
}

TEST(ValueTest, OrderingIsTotalAndConsistent) {
  std::vector<Value> Vals = {Value::absent(),  Value::unit(),
                             Value::of(false), Value::of(true),
                             Value::of(-3),    Value::of(10),
                             Value::of("a"),   Value::of("b")};
  for (size_t I = 0; I != Vals.size(); ++I) {
    for (size_t J = 0; J != Vals.size(); ++J) {
      if (I == J) {
        EXPECT_FALSE(Vals[I] < Vals[J]);
      } else {
        EXPECT_TRUE((Vals[I] < Vals[J]) != (Vals[J] < Vals[I]));
      }
    }
  }
}

TEST(ValueTest, HashDistinguishesTypicalValues) {
  std::unordered_set<Value> Set;
  Set.insert(Value::of(1));
  Set.insert(Value::of(2));
  Set.insert(Value::of("1"));
  Set.insert(Value::absent());
  EXPECT_EQ(Set.size(), 4u);
  EXPECT_TRUE(Set.count(Value::of(1)));
  EXPECT_FALSE(Set.count(Value::of(3)));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::absent().toString(), "absent");
  EXPECT_EQ(Value::of(12).toString(), "12");
  EXPECT_EQ(Value::of("hi").toString(), "\"hi\"");
  EXPECT_EQ(Value::of(true).toString(), "true");
}

TEST(LocationTest, EqualityAndHashing) {
  ObjectId A{1}, B{2};
  Location Scalar(A);
  Location Indexed(A, 3);
  Location Keyed(A, "k");
  EXPECT_EQ(Scalar, Location(A));
  EXPECT_NE(Scalar, Indexed);
  EXPECT_NE(Indexed, Location(A, 4));
  EXPECT_EQ(Indexed, Location(A, 3));
  EXPECT_NE(Indexed, Location(B, 3));
  EXPECT_NE(Keyed, Location(A, "j"));

  std::unordered_set<Location> Set{Scalar, Indexed, Keyed};
  EXPECT_EQ(Set.size(), 3u);
  EXPECT_TRUE(Set.count(Location(A, 3)));
}

TEST(LocationTest, OrderingGroupsByObject) {
  ObjectId A{1}, B{2};
  std::set<Location> Set{Location(B), Location(A, 5), Location(A)};
  auto It = Set.begin();
  EXPECT_EQ(It->Obj, A);
  ++It;
  EXPECT_EQ(It->Obj, A);
  ++It;
  EXPECT_EQ(It->Obj, B);
}

TEST(ObjectRegistryTest, RegistrationAndClassDefaults) {
  ObjectRegistry Reg;
  ObjectId Work = Reg.registerObject("work");
  ObjectId Color = Reg.registerObject("color", "color.elem");
  EXPECT_EQ(Reg.info(Work).Name, "work");
  EXPECT_EQ(Reg.info(Work).LocClass, "work");
  EXPECT_EQ(Reg.info(Color).LocClass, "color.elem");
  EXPECT_EQ(Reg.size(), 2u);
  EXPECT_EQ(Reg.locationName(Location(Color, 7)), "color[7]");
  EXPECT_EQ(Reg.locationName(Location(Work)), "work");
}

TEST(ObjectRegistryTest, RelaxationUpdate) {
  ObjectRegistry Reg;
  ObjectId O = Reg.registerObject("maxColor");
  EXPECT_FALSE(Reg.info(O).Relax.TolerateRAW);
  Reg.setRelaxation(O, RelaxationSpec{/*TolerateRAW=*/true,
                                      /*TolerateWAW=*/false});
  EXPECT_TRUE(Reg.info(O).Relax.TolerateRAW);
  EXPECT_FALSE(Reg.info(O).Relax.TolerateWAW);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, RangeStaysInBounds) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    int64_t V = R.range(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
  }
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng R(99);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 200; ++I)
    Seen.insert(R.below(7));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable T;
  T.setHeader({"bench", "speedup"});
  T.addRow({"filesync", "2.48"});
  T.addRow({"pmd", "1.61"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("bench"), std::string::npos);
  EXPECT_NE(Out.find("filesync  2.48"), std::string::npos);
  EXPECT_NE(Out.find("---"), std::string::npos);
}

TEST(FormatTest, Numbers) {
  EXPECT_EQ(formatDouble(1.234, 2), "1.23");
  EXPECT_EQ(formatDouble(2.0, 1), "2.0");
  EXPECT_EQ(formatPercent(0.173, 1), "17.3%");
}
