//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for janus::verify (DESIGN.md §10): signature parsing
/// round-trips, bounded-exhaustive soundness checking of cached
/// commutativity conditions, counterexample reporting, precision
/// scoring, and the trainer's publish gate.
///
//===----------------------------------------------------------------------===//

#include "janus/verify/SigParser.h"
#include "janus/verify/SpecCheck.h"
#include "janus/verify/Verify.h"

#include "janus/conflict/SequenceDetector.h"
#include "janus/training/Trainer.h"

#include <gtest/gtest.h>

using namespace janus;
using namespace janus::verify;
using namespace janus::symbolic;
using conflict::CacheKey;
using conflict::CommutativityCache;

namespace {

/// Parses \p Sig, failing the test on grammar errors.
abstraction::AbstractSeq parsed(const std::string &Sig) {
  std::optional<abstraction::AbstractSeq> A = parseSignature(Sig);
  EXPECT_TRUE(A.has_value()) << "unparseable signature: " << Sig;
  return A ? *A : abstraction::AbstractSeq{};
}

/// Expands \p Sig and applies the conflict-history symbol offset, the
/// convention checkPair expects on the "theirs" side.
SymLocSeq theirsSide(const std::string &Sig) {
  SymLocSeq Seq = parsed(Sig).expandOnce();
  for (SymLocOp &Op : Seq)
    if (Op.Kind != LocOpKind::Read)
      Op.Operand = Op.Operand.mapSymbols([](SymId S) {
        return S == EntrySym ? S : S + conflict::TheirParamOffset;
      });
  return Seq;
}

ChecksSpec fullChecks() {
  ChecksSpec C;
  C.SameReadA = C.SameReadB = C.Commute = true;
  return C;
}

// ---------------------------------------------------------------------------
// Signature parsing.
// ---------------------------------------------------------------------------

TEST(SigParserTest, RoundTripsEmittedSignatures) {
  // Shapes the abstraction layer actually emits (see AbstractSeq).
  const char *Sigs[] = {
      "R",
      "W(p1)",
      "A(p1)",
      "R, W(read#0+1)",
      "R, W(read#0-1)",
      "W(v0 + p1)",
      "A(-p1)",
      "A(2*p1 - 3)",
      "W(42)",
      "W(true)",
      "W(absent)",
      "W(\"key\")",
      "[A(p1), A(-p1)]+",
      "[R, W(read#0+1)]+, R",
      "R, [W(p1)]+, A(p2)",
      "",
  };
  for (const char *S : Sigs)
    EXPECT_EQ(parsed(S).signature(), S);
}

TEST(SigParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(parseSignature("X(p1)").has_value());
  EXPECT_FALSE(parseSignature("W(p1").has_value());
  EXPECT_FALSE(parseSignature("W()").has_value());
  EXPECT_FALSE(parseSignature("[R").has_value());
  EXPECT_FALSE(parseSignature("W(read#zzz)").has_value());
  EXPECT_FALSE(parseTerm("\"em\"bedded\"").has_value());
}

// ---------------------------------------------------------------------------
// Pair checking: soundness and counterexamples.
// ---------------------------------------------------------------------------

TEST(PairCheckTest, ConvictsAlwaysCommutesOnWritePair) {
  // Two writes of independent parameters do not commute (last writer
  // wins), so the always-true condition is unsound; the counterexample
  // must pin concrete differing operands.
  SymLocSeq Mine = parsed("W(p1)").expandOnce();
  SymLocSeq Theirs = theirsSide("W(p1)");
  PairResult R = checkPair(Mine, Theirs, Condition::valid(), fullChecks());
  EXPECT_EQ(R.V, Verdict::Unsound);
  ASSERT_TRUE(R.Cex.has_value());
  EXPECT_EQ(R.Cex->FailedCheck, "COMMUTE");
  EXPECT_FALSE(R.Cex->Text.empty());
  // The relational/SAT engine independently confirms the conviction.
  EXPECT_TRUE(R.SatConfirmed);
}

TEST(PairCheckTest, EqualWritesConditionIsSound) {
  // The learned condition for W(p1) | W(p1) is p1 == theirs.p1; it
  // admits exactly the commuting states, so it is sound and perfectly
  // precise.
  SymLocSeq Mine = parsed("W(p1)").expandOnce();
  SymLocSeq Theirs = theirsSide("W(p1)");
  std::optional<Condition> Cond =
      commutativityCondition(Mine, Theirs, fullChecks());
  ASSERT_TRUE(Cond.has_value());
  EXPECT_TRUE(Cond->isConditional());
  PairResult R = checkPair(Mine, Theirs, *Cond, fullChecks());
  EXPECT_EQ(R.V, Verdict::Sound);
  EXPECT_GT(R.PointsChecked, 0u);
  EXPECT_GT(R.CommutingPoints, 0u);
  EXPECT_DOUBLE_EQ(R.precision(), 1.0);
}

TEST(PairCheckTest, CounterAddsAlwaysCommute) {
  SymLocSeq Mine = parsed("A(p1)").expandOnce();
  SymLocSeq Theirs = theirsSide("A(p1)");
  PairResult R = checkPair(Mine, Theirs, Condition::valid(), fullChecks());
  EXPECT_EQ(R.V, Verdict::Sound);
  EXPECT_GT(R.PointsChecked, 0u);
  // Every enumerated state commutes and the condition admits them all.
  EXPECT_EQ(R.CommutingPoints, R.PointsChecked);
  EXPECT_EQ(R.AdmittedPoints, R.PointsChecked);
  EXPECT_DOUBLE_EQ(R.precision(), 1.0);
}

TEST(PairCheckTest, NeverConditionIsVacuouslySoundButImprecise) {
  SymLocSeq Mine = parsed("A(p1)").expandOnce();
  SymLocSeq Theirs = theirsSide("A(p1)");
  PairResult R = checkPair(Mine, Theirs, Condition::never(), fullChecks());
  EXPECT_EQ(R.V, Verdict::Sound); // Admits nothing: cannot be unsound.
  EXPECT_EQ(R.AdmittedPoints, 0u);
  EXPECT_DOUBLE_EQ(R.precision(), 0.0); // ... at total parallelism cost.
}

TEST(PairCheckTest, SameReadViolationDetected) {
  // Mine reads; theirs overwrites with a fresh parameter. Running after
  // theirs changes mine's read results, so SAMEREAD(mine) fails on any
  // state where the write differs from the entry value — the
  // always-true condition is unsound even though final states agree.
  SymLocSeq Mine = parsed("R").expandOnce();
  SymLocSeq Theirs = theirsSide("W(p1)");
  PairResult R = checkPair(Mine, Theirs, Condition::valid(), fullChecks());
  EXPECT_EQ(R.V, Verdict::Unsound);
  ASSERT_TRUE(R.Cex.has_value());
  EXPECT_EQ(R.Cex->FailedCheck, "SAMEREAD(mine)");
}

TEST(PairCheckTest, DeterministicAcrossRuns) {
  SymLocSeq Mine = parsed("W(v0 + p1)").expandOnce();
  SymLocSeq Theirs = theirsSide("A(p1)");
  std::optional<Condition> Cond =
      commutativityCondition(Mine, Theirs, fullChecks());
  ASSERT_TRUE(Cond.has_value());
  PairResult A = checkPair(Mine, Theirs, *Cond, fullChecks());
  PairResult B = checkPair(Mine, Theirs, *Cond, fullChecks());
  EXPECT_EQ(A.V, B.V);
  EXPECT_EQ(A.PointsChecked, B.PointsChecked);
  EXPECT_EQ(A.AdmittedPoints, B.AdmittedPoints);
  EXPECT_EQ(A.CommutingPoints, B.CommutingPoints);
  EXPECT_EQ(A.AdmittedCommuting, B.AdmittedCommuting);
  EXPECT_DOUBLE_EQ(A.precision(), B.precision());
}

// ---------------------------------------------------------------------------
// Table verification.
// ---------------------------------------------------------------------------

TEST(TableVerifierTest, SeededUnsoundEntryConvicted) {
  CommutativityCache Cache(1);
  CacheKey Bad;
  Bad.LocClass = "seeded.unsound";
  Bad.MineSig = "W(p1)";
  Bad.TheirsSig = "W(p1)";
  Cache.insert(std::move(Bad), Condition::valid());

  ObjectRegistry Reg;
  TableReport R = verifyTable(Cache, Reg);
  EXPECT_FALSE(R.clean());
  EXPECT_EQ(R.Entries, 1u);
  EXPECT_EQ(R.Unsound, 1u);
  ASSERT_EQ(R.EntryReports.size(), 1u);
  const PairResult &PR = R.EntryReports[0].Result;
  ASSERT_TRUE(PR.Cex.has_value());
  EXPECT_EQ(PR.Cex->FailedCheck, "COMMUTE");
  // The relational/SAT engine agrees with the enumeration's verdict.
  EXPECT_TRUE(PR.SatConfirmed);
  // The protocol model cannot: two blind constant writes match the
  // commit-order replay in every schedule (the violation needs a
  // read→write dataflow to surface — see the next test), so its
  // best-effort confirmation correctly comes back negative.
  EXPECT_FALSE(PR.ModelConfirmed);
  // The JSON report carries the conviction.
  std::string Json = R.toJson();
  EXPECT_NE(Json.find("\"clean\":false"), std::string::npos);
  EXPECT_NE(Json.find("seeded.unsound"), std::string::npos);
}

TEST(TableVerifierTest, StaleReadConvictionModelConfirmed) {
  // Admitting two read-increment-writes as always-commuting is the
  // classic stale-snapshot bug (a lost update). Unlike the blind-write
  // seed above, the divergence flows through a read, so the protocol
  // model checker reproduces it: the admitted schedule's final state
  // differs from its commit-order replay.
  CommutativityCache Cache(1);
  CacheKey Bad;
  Bad.LocClass = "seeded.stale";
  Bad.MineSig = "R, W(read#0+1)";
  Bad.TheirsSig = "R, W(read#0+1)";
  Cache.insert(std::move(Bad), Condition::valid());

  ObjectRegistry Reg;
  TableReport R = verifyTable(Cache, Reg);
  EXPECT_FALSE(R.clean());
  ASSERT_EQ(R.EntryReports.size(), 1u);
  const PairResult &PR = R.EntryReports[0].Result;
  EXPECT_EQ(PR.V, Verdict::Unsound);
  ASSERT_TRUE(PR.Cex.has_value());
  EXPECT_EQ(PR.Cex->FailedCheck, "SAMEREAD(mine)");
  EXPECT_TRUE(PR.ModelConfirmed);
}

TEST(TableVerifierTest, TrainedCounterTableIsSound) {
  // Train on counter-style tasks: the resulting table (adds, reads,
  // read-increment-writes over one class) must verify clean.
  ObjectRegistry Reg;
  ObjectId Ctr = Reg.registerObject("test.counter", "test.counter");
  auto Cache = std::make_shared<CommutativityCache>();
  training::Trainer T(Reg, Cache);
  stm::Snapshot State;
  std::vector<stm::TaskFn> Tasks;
  for (int I = 0; I != 6; ++I)
    Tasks.push_back([Ctr, I](stm::TxContext &Tx) {
      Location L{Ctr};
      if (I % 3 == 2) {
        Value V = Tx.read(L);
        Tx.write(L, Value::of(V.isInt() ? V.asInt() + 1 : 1));
      } else {
        Tx.add(L, 1);
      }
    });
  T.trainOn(State, Tasks);
  ASSERT_GT(Cache->size(), 0u);

  TableReport R = verifyTable(*Cache, Reg);
  EXPECT_TRUE(R.clean()) << R.toText(/*Verbose=*/true);
  EXPECT_EQ(R.Unsound, 0u);
  EXPECT_GT(R.Sound, 0u);
}

TEST(TableVerifierTest, UnparseableSignatureIsUnsupportedNotCrash) {
  CommutativityCache Cache(1);
  CacheKey Weird;
  Weird.LocClass = "hand.edited";
  Weird.MineSig = "FROB(p1)";
  Weird.TheirsSig = "W(p1)";
  Cache.insert(std::move(Weird), Condition::valid());
  ObjectRegistry Reg;
  TableReport R = verifyTable(Cache, Reg);
  EXPECT_EQ(R.Unsupported, 1u);
  EXPECT_EQ(R.Unsound, 0u);
  EXPECT_TRUE(R.clean()); // Unsupported is a warning, not a conviction.
}

// ---------------------------------------------------------------------------
// Trainer publish gate.
// ---------------------------------------------------------------------------

TEST(PublishGateTest, TrainerRunsVerifierBeforeCaching) {
  ObjectRegistry Reg;
  ObjectId Ctr = Reg.registerObject("gate.counter", "gate.counter");
  auto Cache = std::make_shared<CommutativityCache>();
  training::TrainerConfig Cfg;
  ASSERT_TRUE(Cfg.VerifyBeforePublish); // Gate is on by default.
  training::Trainer T(Reg, Cache, Cfg);
  stm::Snapshot State;
  std::vector<stm::TaskFn> Tasks;
  for (int I = 0; I != 4; ++I)
    Tasks.push_back(
        [Ctr](stm::TxContext &Tx) { Tx.add(Location{Ctr}, 2); });
  T.trainOn(State, Tasks);
  EXPECT_GT(T.stats().VerifyChecks, 0u);
  EXPECT_EQ(T.stats().VerifyRejected, 0u); // Honest conditions survive.
  EXPECT_GT(Cache->size(), 0u);
}

//===----------------------------------------------------------------------===//
// Spec-table vetting (SpecCheck): the hand-written tier-1 tables replay
// clean against the reference semantics, and a deliberately-unsound
// table is convicted.
//===----------------------------------------------------------------------===//

TEST(SpecCheckTest, ShippedTablesReplayClean) {
  verify::SpecReport R = verify::checkShippedSpecTables();
  EXPECT_TRUE(R.clean()) << R.toText(/*Verbose=*/true);
  EXPECT_FALSE(R.unsound());
  // Every shipped table was exercised and answered on real points.
  ASSERT_EQ(R.Tables.size(), std::size(conflict::SpecTables));
  for (const verify::SpecTableResult &T : R.Tables) {
    EXPECT_GT(T.PointsChecked, 0u) << T.Table;
    EXPECT_GT(T.Verdicts, 0u) << T.Table;
    EXPECT_EQ(T.Convictions, 0u) << T.Table;
  }
}

TEST(SpecCheckTest, SeededUnsoundSpecConvicted) {
  conflict::SpecTableEntry Bad = verify::seededUnsoundSpecEntry();
  verify::SpecReport R = verify::checkSpecTables(&Bad, 1);
  EXPECT_FALSE(R.clean());
  EXPECT_TRUE(R.unsound());
  ASSERT_EQ(R.Tables.size(), 1u);
  EXPECT_GT(R.Tables[0].Convictions, 0u);
  // The rendered sample is bounded even though convictions are not.
  EXPECT_LE(R.Findings.size(), 10u);
  EXPECT_NE(R.toJson().find("\"clean\":false"), std::string::npos);
}

TEST(SpecCheckTest, ReplayIsDeterministic) {
  verify::SpecCheckConfig Small;
  Small.MaxSeqLen = 1; // Keep the repeated replay cheap.
  verify::SpecReport A = verify::checkShippedSpecTables(Small);
  verify::SpecReport B = verify::checkShippedSpecTables(Small);
  ASSERT_EQ(A.Tables.size(), B.Tables.size());
  for (size_t I = 0; I != A.Tables.size(); ++I) {
    EXPECT_EQ(A.Tables[I].PointsChecked, B.Tables[I].PointsChecked);
    EXPECT_EQ(A.Tables[I].Verdicts, B.Tables[I].Verdicts);
    EXPECT_EQ(A.Tables[I].Abstains, B.Tables[I].Abstains);
  }
}

TEST(SpecCheckTest, MaxPointsTruncatesDeterministically) {
  verify::SpecCheckConfig Tight;
  Tight.MaxPoints = 100;
  verify::SpecReport R = verify::checkShippedSpecTables(Tight);
  for (const verify::SpecTableResult &T : R.Tables) {
    EXPECT_TRUE(T.Truncated) << T.Table;
    EXPECT_EQ(T.PointsChecked, 100u) << T.Table;
  }
}

} // namespace
