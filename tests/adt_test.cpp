//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the transactional ADT handles: their lowering to
/// per-location operations, footprints, and pattern-relevant semantics
/// (identity push/pop, equal writes, reductions, scratch resets).
///
//===----------------------------------------------------------------------===//

#include "janus/adt/TxArray.h"
#include "janus/adt/TxBitSet.h"
#include "janus/adt/TxCanvas.h"
#include "janus/adt/TxCounter.h"
#include "janus/adt/TxList.h"
#include "janus/adt/TxMap.h"
#include "janus/adt/TxVar.h"

#include <gtest/gtest.h>

using namespace janus;
using namespace janus::adt;
using stm::Snapshot;
using stm::TxContext;
using symbolic::LocOpKind;

namespace {

struct Fixture {
  ObjectRegistry Reg;
  Snapshot State;

  TxContext fresh() { return TxContext(State, 1, Reg); }

  /// Applies a context's log to the fixture state (simulating commit).
  void commit(const TxContext &Tx) {
    for (const stm::LogEntry &E : Tx.log())
      State = stm::applyToSnapshot(State, E.Loc, E.Op);
  }
};

} // namespace

TEST(TxVarTest, IntRoundTrip) {
  Fixture F;
  TxIntVar V = TxIntVar::create(F.Reg, "x");
  TxContext Tx = F.fresh();
  EXPECT_EQ(V.get(Tx), 0);
  EXPECT_EQ(V.get(Tx, 42), 42); // Default for unset.
  V.set(Tx, 7);
  EXPECT_EQ(V.get(Tx), 7);
  F.commit(Tx);
  TxContext Tx2 = F.fresh();
  EXPECT_EQ(V.get(Tx2), 7);
}

TEST(TxVarTest, StrRoundTrip) {
  Fixture F;
  TxStrVar V = TxStrVar::create(F.Reg, "s");
  TxContext Tx = F.fresh();
  EXPECT_EQ(V.get(Tx), "");
  V.set(Tx, "hello");
  EXPECT_EQ(V.get(Tx), "hello");
}

TEST(TxVarTest, RelaxationSpecIsRegistered) {
  Fixture F;
  TxIntVar V = TxIntVar::create(
      F.Reg, "maxColor", RelaxationSpec{/*TolerateRAW=*/true,
                                        /*TolerateWAW=*/false});
  EXPECT_TRUE(F.Reg.info(V.object()).Relax.TolerateRAW);
  EXPECT_FALSE(F.Reg.info(V.object()).Relax.TolerateWAW);
}

TEST(TxCounterTest, AddsAreSemanticOps) {
  Fixture F;
  TxCounter C = TxCounter::create(F.Reg, "work");
  TxContext Tx = F.fresh();
  C.add(Tx, 5);
  C.sub(Tx, 2);
  EXPECT_EQ(C.get(Tx), 3);
  // The log must contain semantic Adds, not read-modify-writes.
  ASSERT_EQ(Tx.log().size(), 3u);
  EXPECT_EQ(Tx.log()[0].Op.Kind, LocOpKind::Add);
  EXPECT_EQ(Tx.log()[0].Op.Operand, Value::of(5));
  EXPECT_EQ(Tx.log()[1].Op.Operand, Value::of(-2));
  EXPECT_EQ(Tx.log()[2].Op.Kind, LocOpKind::Read);
}

TEST(TxArrayTest, PerElementLocations) {
  Fixture F;
  TxIntArray A = TxIntArray::create(F.Reg, "color");
  EXPECT_EQ(F.Reg.info(A.object()).LocClass, "color.elem");
  TxContext Tx = F.fresh();
  A.writeAt(Tx, 3, 7);
  A.addAt(Tx, 4, 2);
  EXPECT_EQ(A.readAt(Tx, 3), 7);
  EXPECT_EQ(A.readAt(Tx, 4), 2);
  EXPECT_EQ(A.readAt(Tx, 99), 0);
  EXPECT_EQ(A.readAt(Tx, 99, -1), -1);
  EXPECT_NE(A.locationAt(3), A.locationAt(4));
}

TEST(TxBitSetTest, SetClearGet) {
  Fixture F;
  TxBitSet B = TxBitSet::create(F.Reg, "used", 16);
  TxContext Tx = F.fresh();
  EXPECT_FALSE(B.get(Tx, 3));
  B.set(Tx, 3);
  EXPECT_TRUE(B.get(Tx, 3));
  B.clear(Tx, 3);
  EXPECT_FALSE(B.get(Tx, 3));
}

TEST(TxBitSetTest, ClearAllResetsEveryBit) {
  Fixture F;
  TxBitSet B = TxBitSet::create(F.Reg, "used", 8);
  TxContext Tx = F.fresh();
  B.set(Tx, 1);
  B.set(Tx, 5);
  B.clearAll(Tx);
  for (int64_t I = 0; I != 8; ++I)
    EXPECT_FALSE(B.get(Tx, I));
}

TEST(TxMapTest, PutGetContainsErase) {
  Fixture F;
  TxMap M = TxMap::create(F.Reg, "attrs");
  TxContext Tx = F.fresh();
  EXPECT_FALSE(M.contains(Tx, "k"));
  EXPECT_EQ(M.get(Tx, "k"), std::nullopt);
  M.put(Tx, "k", Value::of(3));
  EXPECT_TRUE(M.contains(Tx, "k"));
  EXPECT_EQ(M.get(Tx, "k"), Value::of(3));
  M.erase(Tx, "k");
  EXPECT_FALSE(M.contains(Tx, "k"));
}

TEST(TxMapTest, AddAtIsAReductionFromAbsent) {
  Fixture F;
  TxMap M = TxMap::create(F.Reg, "counters");
  TxContext Tx = F.fresh();
  M.addAt(Tx, "rule0", 1);
  M.addAt(Tx, "rule0", 1);
  EXPECT_EQ(M.get(Tx, "rule0"), Value::of(2));
}

TEST(TxListTest, PushPopIdentity) {
  Fixture F;
  TxList L = TxList::create(F.Reg, "items");
  TxContext Tx = F.fresh();
  EXPECT_EQ(L.size(Tx), 0);
  L.pushBack(Tx, Value::of(10));
  L.pushBack(Tx, Value::of(20));
  EXPECT_EQ(L.size(Tx), 2);
  EXPECT_EQ(L.at(Tx, 1), Value::of(20));
  L.popBack(Tx);
  L.popBack(Tx);
  EXPECT_EQ(L.size(Tx), 0);
  // Identity: committing this log leaves the list cells exactly as
  // they started (erased, not stale).
  F.commit(Tx);
  TxContext Tx2 = F.fresh();
  EXPECT_EQ(L.size(Tx2), 0);
  EXPECT_TRUE(L.at(Tx2, 0).isAbsent());
  EXPECT_TRUE(L.at(Tx2, 1).isAbsent());
}

TEST(TxListTest, SizeCellExhibitsPushPopPattern) {
  Fixture F;
  TxList L = TxList::create(F.Reg, "items");
  TxContext Tx = F.fresh();
  L.pushBack(Tx, Value::of(1));
  L.popBack(Tx);
  // Size-cell operations: R, W(+1), R, W(-1) — the pattern the
  // abstraction collapses (see abstraction_test).
  int SizeOps = 0;
  for (const stm::LogEntry &E : Tx.log())
    if (E.Loc == L.sizeLocation())
      ++SizeOps;
  EXPECT_EQ(SizeOps, 4);
}

TEST(TxCanvasTest, PixelsAndClipping) {
  Fixture F;
  TxCanvas C = TxCanvas::create(F.Reg, "display", 16, 16);
  TxContext Tx = F.fresh();
  C.setPixel(Tx, 3, 4, "red");
  EXPECT_EQ(C.getPixel(Tx, 3, 4), "red");
  EXPECT_EQ(C.getPixel(Tx, 0, 0), "");
  // Out-of-bounds writes are clipped, not crashes.
  C.setPixel(Tx, -1, 0, "red");
  C.setPixel(Tx, 16, 0, "red");
}

TEST(TxCanvasTest, DrawLineCoversEndpoints) {
  Fixture F;
  TxCanvas C = TxCanvas::create(F.Reg, "display", 16, 16);
  TxContext Tx = F.fresh();
  C.drawLine(Tx, 1, 1, 6, 4, "black");
  EXPECT_EQ(C.getPixel(Tx, 1, 1), "black");
  EXPECT_EQ(C.getPixel(Tx, 6, 4), "black");
}

TEST(TxCanvasTest, FillOvalPaintsCenter) {
  Fixture F;
  TxCanvas C = TxCanvas::create(F.Reg, "display", 32, 32);
  TxContext Tx = F.fresh();
  C.fillOval(Tx, 4, 4, 8, 6, "gray");
  EXPECT_EQ(C.getPixel(Tx, 8, 7), "gray");  // Center.
  EXPECT_EQ(C.getPixel(Tx, 4, 4), "");      // Corner outside ellipse.
}

TEST(TxCanvasTest, EqualWritesProduceIdenticalLogEntries) {
  // Two transactions painting the same pixel the same color produce
  // operationally equal writes — the equal-writes pattern's premise.
  Fixture F;
  TxCanvas C = TxCanvas::create(F.Reg, "display", 8, 8);
  TxContext T1 = F.fresh(), T2 = F.fresh();
  C.setPixel(T1, 2, 2, "black");
  C.setPixel(T2, 2, 2, "black");
  ASSERT_EQ(T1.log().size(), 1u);
  EXPECT_EQ(T1.log()[0].Loc, T2.log()[0].Loc);
  EXPECT_EQ(T1.log()[0].Op, T2.log()[0].Op);
}

#include "janus/adt/TxQueue.h"

TEST(TxQueueTest, FifoSemantics) {
  Fixture F;
  TxQueue Q = TxQueue::create(F.Reg, "jobs");
  TxContext Tx = F.fresh();
  EXPECT_TRUE(Q.empty(Tx));
  EXPECT_EQ(Q.dequeue(Tx), std::nullopt);
  Q.enqueue(Tx, Value::of(1));
  Q.enqueue(Tx, Value::of(2));
  Q.enqueue(Tx, Value::of(3));
  EXPECT_EQ(Q.size(Tx), 3);
  EXPECT_EQ(Q.front(Tx), Value::of(1));
  EXPECT_EQ(Q.dequeue(Tx), Value::of(1));
  EXPECT_EQ(Q.dequeue(Tx), Value::of(2));
  EXPECT_EQ(Q.size(Tx), 1);
  EXPECT_EQ(Q.dequeue(Tx), Value::of(3));
  EXPECT_TRUE(Q.empty(Tx));
}

TEST(TxQueueTest, DequeueErasesConsumedCells) {
  Fixture F;
  TxQueue Q = TxQueue::create(F.Reg, "jobs");
  TxContext Tx = F.fresh();
  Q.enqueue(Tx, Value::of(7));
  Q.dequeue(Tx);
  F.commit(Tx);
  TxContext Tx2 = F.fresh();
  // The consumed cell holds Absent again (identity on the cell).
  EXPECT_TRUE(Tx2.read(Location(Q.object(), int64_t(0))).isAbsent());
}

TEST(TxQueueTest, ProducerAndConsumerTouchDisjointCounters) {
  // A pure producer never accesses the head; a pure consumer (of an
  // already-populated queue) never accesses the tail beyond a read —
  // the structural reason producer/consumer pairs rarely conflict.
  Fixture F;
  TxQueue Q = TxQueue::create(F.Reg, "jobs");
  {
    TxContext Seed = F.fresh();
    Q.enqueue(Seed, Value::of(1));
    Q.enqueue(Seed, Value::of(2));
    F.commit(Seed);
  }
  TxContext Producer = F.fresh();
  Q.enqueue(Producer, Value::of(3));
  bool ProducerTouchesHead = false;
  for (const stm::LogEntry &E : Producer.log())
    if (E.Loc == Q.headLocation())
      ProducerTouchesHead = true;
  EXPECT_FALSE(ProducerTouchesHead);

  TxContext Consumer = F.fresh();
  Q.dequeue(Consumer);
  bool ConsumerWritesTail = false;
  for (const stm::LogEntry &E : Consumer.log())
    if (E.Loc == Q.tailLocation() &&
        E.Op.Kind != symbolic::LocOpKind::Read)
      ConsumerWritesTail = true;
  EXPECT_FALSE(ConsumerWritesTail);
}
