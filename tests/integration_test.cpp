//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-module integration tests:
///   - the ADT handles agree with their relational abstraction
///     specifications (§6.1) under random operation streams;
///   - the sequence detector with a trained cache preserves
///     serializability end to end (commit-order replay oracle) on
///     random workloads, on both engines;
///   - engines agree with each other on final states for ordered runs.
///
//===----------------------------------------------------------------------===//

#include "janus/adt/TxBitSet.h"
#include "janus/adt/TxMap.h"
#include "janus/conflict/SequenceDetector.h"
#include "janus/core/Janus.h"
#include "janus/relational/RelOp.h"
#include "janus/stm/SimRuntime.h"
#include "janus/stm/ThreadedRuntime.h"
#include "janus/support/Rng.h"
#include "janus/training/Trainer.h"

#include <gtest/gtest.h>

using namespace janus;
using namespace janus::relational;
using stm::LogEntry;
using stm::Snapshot;
using stm::TaskFn;
using stm::TxContext;

// ---------------------------------------------------------------------------
// ADT ↔ relational specification agreement.
// ---------------------------------------------------------------------------

namespace {

SchemaRef bitSetSchema() {
  return std::make_shared<Schema>(std::vector<std::string>{"idx", "val"},
                                  std::vector<uint32_t>{0});
}

SchemaRef mapSchema() {
  return std::make_shared<Schema>(std::vector<std::string>{"key", "val"},
                                  std::vector<uint32_t>{0});
}

} // namespace

class AdtRelationalAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdtRelationalAgreement, BitSetMatchesItsRelationalSpec) {
  // Paper §3 step 1: BitSet as a 2-ary relation idx → val; set(n, x) is
  // insert (n, x); get(n) is a select. Random op streams through the
  // transactional handle and through the relation must agree.
  Rng R(GetParam());
  ObjectRegistry Reg;
  adt::TxBitSet Bits = adt::TxBitSet::create(Reg, "bits", 8);
  TxContext Tx(Snapshot(), 1, Reg);
  Relation Model(bitSetSchema());

  for (int Step = 0; Step != 300; ++Step) {
    int64_t Idx = static_cast<int64_t>(R.below(8));
    switch (R.below(3)) {
    case 0:
      Bits.set(Tx, Idx);
      Model = Model.insert(Tuple({Value::of(Idx), Value::of(true)}));
      break;
    case 1:
      Bits.clear(Tx, Idx);
      Model = Model.insert(Tuple({Value::of(Idx), Value::of(false)}));
      break;
    default: {
      bool Handle = Bits.get(Tx, Idx);
      Relation Selected =
          Model.select(TupleFormula::mkEq(0, Value::of(Idx)));
      bool Spec = !Selected.empty() &&
                  Selected.tuples().begin()->at(1) == Value::of(true);
      ASSERT_EQ(Handle, Spec) << "step " << Step << " idx " << Idx;
      break;
    }
    }
  }
}

TEST_P(AdtRelationalAgreement, MapMatchesItsRelationalSpec) {
  Rng R(GetParam() + 7);
  ObjectRegistry Reg;
  adt::TxMap Map = adt::TxMap::create(Reg, "attrs");
  TxContext Tx(Snapshot(), 1, Reg);
  Relation Model(mapSchema());

  const char *Keys[4] = {"a", "b", "c", "d"};
  for (int Step = 0; Step != 300; ++Step) {
    std::string Key = Keys[R.below(4)];
    switch (R.below(4)) {
    case 0: {
      int64_t V = R.range(0, 9);
      Map.put(Tx, Key, Value::of(V));
      Model = Model.insert(Tuple({Value::of(Key), Value::of(V)}));
      break;
    }
    case 1:
      Map.erase(Tx, Key);
      Model = Model.select(
          TupleFormula::mkNot(TupleFormula::mkEq(0, Value::of(Key))));
      break;
    case 2: {
      bool Handle = Map.contains(Tx, Key);
      bool Spec =
          !Model.select(TupleFormula::mkEq(0, Value::of(Key))).empty();
      ASSERT_EQ(Handle, Spec) << "step " << Step << " key " << Key;
      break;
    }
    default: {
      std::optional<Value> Handle = Map.get(Tx, Key);
      Relation Selected =
          Model.select(TupleFormula::mkEq(0, Value::of(Key)));
      if (Selected.empty()) {
        ASSERT_EQ(Handle, std::nullopt) << "step " << Step;
      } else {
        ASSERT_TRUE(Handle.has_value());
        ASSERT_EQ(*Handle, Selected.tuples().begin()->at(1));
      }
      break;
    }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdtRelationalAgreement,
                         ::testing::Values(81, 82, 83));

// ---------------------------------------------------------------------------
// End-to-end serializability with the trained sequence detector.
// ---------------------------------------------------------------------------

namespace {

/// Random mixed tasks over counters and cells (no relaxations, so full
/// serializability must hold).
std::vector<TaskFn> mixedTasks(ObjectId Counter, ObjectId Cell,
                               ObjectId List, Rng &R, int Count) {
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != Count; ++I) {
    int Kind = static_cast<int>(R.below(4));
    int64_t V = R.range(1, 6);
    Tasks.push_back([=](TxContext &Tx) {
      switch (Kind) {
      case 0: // Identity on the counter.
        Tx.add(Location(Counter), V);
        Tx.add(Location(Counter), -V);
        break;
      case 1: // Net reduction.
        Tx.add(Location(Counter), V);
        break;
      case 2: { // Read-modify-write on the cell (real dependency).
        Value Cur = Tx.read(Location(Cell));
        Tx.write(Location(Cell),
                 Value::of((Cur.isInt() ? Cur.asInt() : 0) + V));
        break;
      }
      default: { // Push/pop on the list cells.
        Value Size = Tx.read(Location(List, "size"));
        int64_t N = Size.isInt() ? Size.asInt() : 0;
        Tx.write(Location(List, "size"), Value::of(N + 1));
        Tx.write(Location(List, N), Value::of(V));
        Tx.write(Location(List, "size"), Value::of(N));
        Tx.write(Location(List, N), Value::absent());
        break;
      }
      }
    });
  }
  return Tasks;
}

Snapshot replay(const ObjectRegistry &Reg, Snapshot State,
                const std::vector<TaskFn> &Tasks,
                const std::vector<uint32_t> &Order) {
  for (uint32_t Tid : Order) {
    TxContext Tx(State, Tid, Reg);
    Tasks[Tid - 1](Tx);
    for (const LogEntry &E : Tx.log())
      State = stm::applyToSnapshot(State, E.Loc, E.Op);
  }
  return State;
}

} // namespace

class TrainedDetectorSerializability
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrainedDetectorSerializability, SimCommitOrderReplayMatches) {
  Rng R(GetParam());
  ObjectRegistry Reg;
  ObjectId Counter = Reg.registerObject("counter");
  ObjectId Cell = Reg.registerObject("cell");
  ObjectId List = Reg.registerObject("list", "list.cell");

  auto Cache = std::make_shared<conflict::CommutativityCache>();
  // Train on a few random payloads.
  training::Trainer T(Reg, Cache);
  for (int Round = 0; Round != 2; ++Round) {
    Snapshot S;
    S = S.set(Location(List, "size"), Value::of(int64_t(0)));
    std::vector<TaskFn> Train = mixedTasks(Counter, Cell, List, R, 8);
    T.trainOn(S, Train);
  }

  conflict::SequenceDetectorConfig Cfg;
  Cfg.OnlineFallback = true;
  conflict::SequenceDetector D(Cache, Cfg);

  std::vector<TaskFn> Tasks = mixedTasks(Counter, Cell, List, R, 30);
  stm::SimConfig SimCfg;
  SimCfg.NumCores = 6;
  stm::SimRuntime Runtime(Reg, D, SimCfg);
  Snapshot Init;
  Init = Init.set(Location(List, "size"), Value::of(int64_t(0)));
  Runtime.setInitialState(Init);
  Runtime.run(Tasks);

  Snapshot Replayed = replay(Reg, Init, Tasks, Runtime.commitOrder());
  EXPECT_TRUE(Runtime.sharedState() == Replayed);
  // Sanity bound: read-modify-write tasks genuinely conflict (up to a
  // few retries each at 6 cores), but identity/reduction tasks must
  // not contribute — a blanket write-set detector would retry far more.
  EXPECT_LT(Runtime.stats().Retries.load(), 60u);
}

TEST_P(TrainedDetectorSerializability, ThreadedCommitOrderReplayMatches) {
  Rng R(GetParam() + 500);
  ObjectRegistry Reg;
  ObjectId Counter = Reg.registerObject("counter");
  ObjectId Cell = Reg.registerObject("cell");
  ObjectId List = Reg.registerObject("list", "list.cell");

  auto Cache = std::make_shared<conflict::CommutativityCache>();
  training::Trainer T(Reg, Cache);
  {
    Snapshot S;
    S = S.set(Location(List, "size"), Value::of(int64_t(0)));
    std::vector<TaskFn> Train = mixedTasks(Counter, Cell, List, R, 8);
    T.trainOn(S, Train);
  }

  conflict::SequenceDetectorConfig Cfg;
  Cfg.OnlineFallback = true;
  conflict::SequenceDetector D(Cache, Cfg);

  std::vector<TaskFn> Tasks = mixedTasks(Counter, Cell, List, R, 30);
  stm::ThreadedRuntime Runtime(Reg, D,
                               stm::ThreadedConfig{4, false, false});
  Snapshot Init;
  Init = Init.set(Location(List, "size"), Value::of(int64_t(0)));
  Runtime.setInitialState(Init);
  Runtime.run(Tasks);

  Snapshot Replayed = replay(Reg, Init, Tasks, Runtime.commitOrder());
  EXPECT_TRUE(Runtime.sharedState() == Replayed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrainedDetectorSerializability,
                         ::testing::Values(91, 92, 93, 94));

// ---------------------------------------------------------------------------
// Engine agreement.
// ---------------------------------------------------------------------------

TEST(EngineAgreementTest, OrderedRunsSameFinalStateOnBothEngines) {
  Rng R(1234);
  for (int Trial = 0; Trial != 3; ++Trial) {
    ObjectRegistry Reg;
    ObjectId Counter = Reg.registerObject("counter");
    ObjectId Cell = Reg.registerObject("cell");
    ObjectId List = Reg.registerObject("list", "list.cell");
    std::vector<TaskFn> Tasks = mixedTasks(Counter, Cell, List, R, 20);

    Snapshot Init;
    Init = Init.set(Location(List, "size"), Value::of(int64_t(0)));

    stm::WriteSetDetector D1, D2;
    stm::SimConfig SimCfg;
    SimCfg.NumCores = 4;
    SimCfg.Ordered = true;
    stm::SimRuntime Sim(Reg, D1, SimCfg);
    Sim.setInitialState(Init);
    Sim.run(Tasks);

    stm::ThreadedRuntime Threaded(Reg, D2,
                                  stm::ThreadedConfig{4, true, false});
    Threaded.setInitialState(Init);
    Threaded.run(Tasks);

    EXPECT_TRUE(Sim.sharedState() == Threaded.sharedState())
        << "trial " << Trial;
  }
}
