//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the hindsight auditor (janus::analysis): vector clocks,
/// the commit-order serializability replay, the happens-before race
/// audit, escape detection and the combined audit() facade.
///
/// The central negative test wires a deliberately broken detector that
/// admits everything ("always commutes") into the runtime and checks
/// that the auditor convicts it — the machine-checkable contrapositive
/// of Theorem 4.1.
///
//===----------------------------------------------------------------------===//

#include "janus/analysis/Auditor.h"
#include "janus/adt/TxCounter.h"
#include "janus/stm/Detector.h"
#include "janus/stm/SimRuntime.h"
#include "janus/stm/ThreadedRuntime.h"

#include <gtest/gtest.h>

using namespace janus;
using namespace janus::analysis;
using namespace janus::stm;
using symbolic::LocOp;

namespace {

/// The unsound detector of the negative tests: admits every schedule.
/// Valid (empty history never conflicts) but maximally unsound.
class AlwaysCommutesDetector : public ConflictDetector {
public:
  bool detectConflicts(const Snapshot &, const TxLog &,
                       const std::vector<TxLogRef> &,
                       const ObjectRegistry &) override {
    return false;
  }
  std::string name() const override { return "always-commutes"; }
};

/// N contended read-modify-write increments of one location — the
/// classic lost-update workload; any unsound admission loses updates.
std::vector<TaskFn> incrementTasks(const Location &L, int N) {
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != N; ++I)
    Tasks.push_back([L](TxContext &Tx) {
      Value V = Tx.read(L);
      Tx.write(L, Value::of((V.isAbsent() ? 0 : V.asInt()) + 1));
    });
  return Tasks;
}

/// Runs \p Tasks on the 8-core simulator with \p D, recording a trace.
AuditTrace simTrace(const ObjectRegistry &Reg, ConflictDetector &D,
                    const std::vector<TaskFn> &Tasks,
                    Snapshot Initial = Snapshot()) {
  SimConfig C;
  C.NumCores = 8;
  C.RecordTrace = true;
  SimRuntime R(Reg, D, C);
  R.setInitialState(std::move(Initial));
  R.run(Tasks);
  return R.trace();
}

} // namespace

// ---------------------------------------------------------------------------
// Vector clocks.
// ---------------------------------------------------------------------------

TEST(VectorClockTest, RaiseJoinAndDomination) {
  VectorClock A, B;
  A.raise(1, 3);
  B.raise(2, 5);
  EXPECT_EQ(A.get(1), 3u);
  EXPECT_EQ(A.get(2), 0u);
  EXPECT_TRUE(concurrent(A, B));
  B.join(A);
  EXPECT_EQ(B.get(1), 3u);
  EXPECT_EQ(B.get(2), 5u);
  EXPECT_TRUE(A.dominatedBy(B));
  EXPECT_TRUE(happensBefore(A, B));
  EXPECT_FALSE(happensBefore(B, A));
}

TEST(VectorClockTest, EqualClocksAreOrderedNeitherWay) {
  VectorClock A;
  A.raise(7, 2);
  VectorClock B = A;
  EXPECT_FALSE(happensBefore(A, B));
  EXPECT_FALSE(happensBefore(B, A));
  EXPECT_FALSE(concurrent(A, B)); // Equal, not concurrent.
}

TEST(VectorClockTest, JoinIsComponentwiseMax) {
  VectorClock A, B;
  A.raise(1, 4);
  A.raise(2, 1);
  B.raise(2, 9);
  A.join(B);
  EXPECT_EQ(A.get(1), 4u);
  EXPECT_EQ(A.get(2), 9u);
}

// ---------------------------------------------------------------------------
// Serializability replay.
// ---------------------------------------------------------------------------

TEST(SerializabilityTest, UnrecordedTraceIsNotChecked) {
  ObjectRegistry Reg;
  AuditTrace Trace; // Recorded = false.
  SerializabilityReport R = checkSerializability(Trace, {}, Reg);
  EXPECT_FALSE(R.Checked);
  EXPECT_EQ(R.violationCount(), 0u);
}

TEST(SerializabilityTest, EmptyRunIsClean) {
  ObjectRegistry Reg;
  AuditTrace Trace;
  Trace.Recorded = true;
  SerializabilityReport R = checkSerializability(Trace, {}, Reg);
  EXPECT_TRUE(R.Checked);
  EXPECT_EQ(R.TxReplayed, 0u);
  EXPECT_EQ(R.violationCount(), 0u);
}

TEST(SerializabilityTest, SoundRunReplaysClean) {
  ObjectRegistry Reg;
  ObjectId Obj = Reg.registerObject("x");
  WriteSetDetector D;
  std::vector<TaskFn> Tasks = incrementTasks(Location(Obj), 30);
  AuditTrace Trace = simTrace(Reg, D, Tasks);
  ASSERT_TRUE(Trace.Recorded);
  SerializabilityReport R = checkSerializability(Trace, Tasks, Reg);
  EXPECT_EQ(R.TxReplayed, 30u);
  EXPECT_EQ(R.violationCount(), 0u);
  EXPECT_EQ(R.relaxedCount(), 0u);
}

TEST(SerializabilityTest, BrokenDetectorIsConvicted) {
  // The tentpole negative test: an always-commutes detector loses
  // updates on the contended increment workload, and the commit-order
  // replay must expose the divergence as a serializability violation.
  ObjectRegistry Reg;
  ObjectId Obj = Reg.registerObject("x");
  AlwaysCommutesDetector Broken;
  std::vector<TaskFn> Tasks = incrementTasks(Location(Obj), 40);
  AuditTrace Trace = simTrace(Reg, Broken, Tasks);
  SerializabilityReport R = checkSerializability(Trace, Tasks, Reg);
  EXPECT_GE(R.violationCount(), 1u);
  ASSERT_FALSE(R.Divergences.empty());
  EXPECT_FALSE(R.Divergences[0].Relaxed);
  EXPECT_EQ(R.Divergences[0].LocName, "x");
}

TEST(SerializabilityTest, RelaxedObjectSanctionsDivergence) {
  // Same lost-update anomaly, but the object declares tolerate-RAW:
  // every writer read the relaxed location, so the divergence is
  // classified as relaxation-sanctioned, not a violation.
  ObjectRegistry Reg;
  ObjectId Obj = Reg.registerObject(
      "x", "", RelaxationSpec{/*TolerateRAW=*/true, /*TolerateWAW=*/false});
  AlwaysCommutesDetector Broken;
  std::vector<TaskFn> Tasks = incrementTasks(Location(Obj), 40);
  AuditTrace Trace = simTrace(Reg, Broken, Tasks);
  SerializabilityReport R = checkSerializability(Trace, Tasks, Reg);
  EXPECT_EQ(R.violationCount(), 0u);
  EXPECT_GE(R.relaxedCount(), 1u);
}

TEST(SerializabilityTest, ScheduleIssuesAreReported) {
  ObjectRegistry Reg;
  ObjectId Obj = Reg.registerObject("x");
  auto Log = std::make_shared<const TxLog>(
      TxLog{{Location(Obj), LocOp::write(Value::of(1))}});
  AuditTrace Trace;
  Trace.Recorded = true;
  // Task 1 commits twice; task 2 never; tid 9 is unknown.
  Trace.Events.push_back(TraceEvent{1, 0, 1, true, Log, Snapshot(), CommitMode::Speculative, {}});
  Trace.Events.push_back(TraceEvent{1, 1, 2, true, Log, Snapshot(), CommitMode::Speculative, {}});
  Trace.Events.push_back(TraceEvent{9, 2, 3, true, Log, Snapshot(), CommitMode::Speculative, {}});
  std::vector<TaskFn> Tasks(2, [&](TxContext &Tx) {
    Tx.write(Location(Obj), Value::of(1));
  });
  Trace.Final = Snapshot().set(Location(Obj), Value::of(1));
  SerializabilityReport R = checkSerializability(Trace, Tasks, Reg);
  EXPECT_EQ(R.ScheduleIssues.size(), 3u);
  EXPECT_GE(R.violationCount(), 3u);
}

// ---------------------------------------------------------------------------
// Happens-before race audit.
// ---------------------------------------------------------------------------

TEST(HappensBeforeTest, SoundRunHasNoHarmfulRaces) {
  ObjectRegistry Reg;
  ObjectId Obj = Reg.registerObject("x");
  WriteSetDetector D;
  std::vector<TaskFn> Tasks = incrementTasks(Location(Obj), 30);
  AuditTrace Trace = simTrace(Reg, D, Tasks);
  HappensBeforeReport R = checkHappensBefore(Trace, Reg);
  EXPECT_TRUE(R.Checked);
  EXPECT_EQ(R.CommittedTx, 30u);
  EXPECT_EQ(R.harmfulCount(), 0u);
}

TEST(HappensBeforeTest, SequentialRunHasNoConcurrentPairs) {
  ObjectRegistry Reg;
  ObjectId Obj = Reg.registerObject("x");
  WriteSetDetector D;
  SimConfig C;
  C.NumCores = 1;
  C.RecordTrace = true;
  SimRuntime R(Reg, D, C);
  R.run(incrementTasks(Location(Obj), 10));
  HappensBeforeReport HB = checkHappensBefore(R.trace(), Reg);
  EXPECT_EQ(HB.ConcurrentPairs, 0u);
  EXPECT_TRUE(HB.Races.empty());
}

TEST(HappensBeforeTest, BrokenDetectorAdmitsHarmfulRaces) {
  ObjectRegistry Reg;
  ObjectId Obj = Reg.registerObject("x");
  AlwaysCommutesDetector Broken;
  std::vector<TaskFn> Tasks = incrementTasks(Location(Obj), 40);
  AuditTrace Trace = simTrace(Reg, Broken, Tasks);
  HappensBeforeReport R = checkHappensBefore(Trace, Reg);
  EXPECT_GT(R.ConcurrentPairs, 0u);
  EXPECT_GE(R.harmfulCount(), 1u);
}

TEST(HappensBeforeTest, RelaxedIncrementsAreSanctionedNotHarmful) {
  // Increment logs symbolize as write(read + 1): under the semantic
  // interpretation two increments commute, so on a tolerate-RAW object
  // the exact-COMMUTE failures downgrade to relaxation-sanctioned.
  ObjectRegistry Reg;
  ObjectId Obj = Reg.registerObject(
      "x", "", RelaxationSpec{/*TolerateRAW=*/true, /*TolerateWAW=*/false});
  AlwaysCommutesDetector Broken;
  std::vector<TaskFn> Tasks = incrementTasks(Location(Obj), 40);
  // Seed the counter: a write after a read of Absent does not symbolize
  // as read+1, and only the semantic form is sanctionable.
  AuditTrace Trace = simTrace(Reg, Broken, Tasks,
                              Snapshot().set(Location(Obj), Value::of(0)));
  HappensBeforeReport R = checkHappensBefore(Trace, Reg);
  EXPECT_EQ(R.harmfulCount(), 0u);
  EXPECT_GE(R.relaxedCount(), 1u);
}

TEST(HappensBeforeTest, CommutingAddsAreBenign) {
  ObjectRegistry Reg;
  ObjectId Obj = Reg.registerObject("x");
  WriteSetDetector D; // Sound but conservative; adds retry, then land.
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != 20; ++I)
    Tasks.push_back(
        [L = Location(Obj)](TxContext &Tx) { Tx.add(L, 1); });
  AuditTrace Trace = simTrace(Reg, D, Tasks);
  HappensBeforeReport R = checkHappensBefore(Trace, Reg);
  EXPECT_EQ(R.harmfulCount(), 0u);
}

// ---------------------------------------------------------------------------
// Escape detection.
// ---------------------------------------------------------------------------

#if JANUS_ESCAPE_CHECKS
TEST(EscapeTest, AccessAfterAttemptEndIsFlagged) {
  resetEscapes();
  ObjectRegistry Reg;
  ObjectId Obj = Reg.registerObject("x");
  RunStats Stats;
  TxContext Tx(Snapshot(), 7, Reg, &Stats);
  Tx.read(Location(Obj));
  Tx.endAttempt();
  EXPECT_EQ(escapeCount(), 0u);
  Tx.read(Location(Obj)); // Escaped access: context leaked past commit.
  EXPECT_EQ(escapeCount(), 1u);
  EXPECT_EQ(Stats.EscapedAccesses.load(), 1u);
  ASSERT_EQ(escapeEvents().size(), 1u);
  EXPECT_EQ(escapeEvents()[0].Tid, 7u);
  resetEscapes();
}

TEST(EscapeTest, AdtGuardAttributesTheMethod) {
  resetEscapes();
  ObjectRegistry Reg;
  adt::TxCounter C = adt::TxCounter::create(Reg, "hits");
  TxContext Tx(Snapshot(), 3, Reg);
  C.add(Tx, 1);
  Tx.endAttempt();
  C.add(Tx, 1); // ADT handle used outside the active attempt.
  ASSERT_EQ(escapeEvents().size(), 1u);
  EXPECT_EQ(escapeEvents()[0].Where, "TxCounter::add");
  resetEscapes();
}

TEST(EscapeTest, AuditFoldsEscapesIntoViolations) {
  resetEscapes();
  ObjectRegistry Reg;
  ObjectId Obj = Reg.registerObject("x");
  TxContext Tx(Snapshot(), 1, Reg);
  Tx.endAttempt();
  Tx.write(Location(Obj), Value::of(1));
  AuditTrace Trace;
  AuditReport Report = audit(Trace, {}, Reg);
  EXPECT_EQ(Report.Escapes, 1u);
  EXPECT_EQ(Report.violationCount(), 1u);
  EXPECT_FALSE(Report.clean());
  resetEscapes();
}
#endif // JANUS_ESCAPE_CHECKS

// ---------------------------------------------------------------------------
// The audit() facade.
// ---------------------------------------------------------------------------

TEST(AuditorTest, CleanRunProducesCleanReport) {
  resetEscapes();
  ObjectRegistry Reg;
  ObjectId Obj = Reg.registerObject("x");
  WriteSetDetector D;
  std::vector<TaskFn> Tasks = incrementTasks(Location(Obj), 25);
  AuditTrace Trace = simTrace(Reg, D, Tasks);
  AuditReport Report = audit(Trace, Tasks, Reg);
  EXPECT_TRUE(Report.clean());
  EXPECT_NE(Report.summary().find("audit: CLEAN"), std::string::npos);
}

TEST(AuditorTest, BrokenDetectorFailsTheAudit) {
  resetEscapes();
  ObjectRegistry Reg;
  ObjectId Obj = Reg.registerObject("x");
  AlwaysCommutesDetector Broken;
  std::vector<TaskFn> Tasks = incrementTasks(Location(Obj), 40);
  AuditTrace Trace = simTrace(Reg, Broken, Tasks);
  AuditReport Report = audit(Trace, Tasks, Reg);
  EXPECT_FALSE(Report.clean());
  EXPECT_GE(Report.violationCount(), 1u);
  EXPECT_NE(Report.summary().find("audit: FAILED"), std::string::npos);
}

TEST(AuditorTest, ThreadedTraceAuditsClean) {
  resetEscapes();
  ObjectRegistry Reg;
  ObjectId Obj = Reg.registerObject("x");
  WriteSetDetector D;
  ThreadedRuntime R(Reg, D,
                    ThreadedConfig{4, false, false, /*RecordTrace=*/true});
  std::vector<TaskFn> Tasks = incrementTasks(Location(Obj), 40);
  R.run(Tasks);
  AuditReport Report = audit(R.trace(), Tasks, Reg);
  EXPECT_TRUE(Report.clean()) << Report.summary();
  EXPECT_EQ(Report.Serializability.TxReplayed, 40u);
}

TEST(AuditorTest, ConfigDisablesChecks) {
  ObjectRegistry Reg;
  AuditTrace Trace;
  Trace.Recorded = true;
  AuditConfig Cfg;
  Cfg.CheckSerializability = false;
  Cfg.CheckRaces = false;
  Cfg.CheckEscapes = false;
  AuditReport Report = audit(Trace, {}, Reg, Cfg);
  EXPECT_FALSE(Report.Serializability.Checked);
  EXPECT_FALSE(Report.Races.Checked);
  EXPECT_EQ(Report.Escapes, 0u);
}

// ---------------------------------------------------------------------------
// Audit trace bookkeeping.
// ---------------------------------------------------------------------------

TEST(AuditTraceTest, CommitsSortedAbortsCounted) {
  ObjectRegistry Reg;
  ObjectId Obj = Reg.registerObject("x");
  WriteSetDetector D;
  std::vector<TaskFn> Tasks = incrementTasks(Location(Obj), 30);
  AuditTrace Trace = simTrace(Reg, D, Tasks);
  auto Committed = Trace.committedInOrder();
  ASSERT_EQ(Committed.size(), 30u);
  for (size_t I = 1; I != Committed.size(); ++I)
    EXPECT_LT(Committed[I - 1]->CommitTime, Committed[I]->CommitTime);
  // Contended RMW on 8 cores must have aborted at least once.
  EXPECT_GT(Trace.abortedCount(), 0u);
  EXPECT_EQ(Trace.Events.size(), 30u + Trace.abortedCount());
}
