//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the flight recorder and deterministic replay (DESIGN.md
/// §13): the bounded per-lane ring and its drop accounting, the binary
/// `.jrec` codec (round-trip plus corruption rejection), schedule
/// reconstruction's completeness validation, record→replay round trips
/// on both recording engines with the bit-for-bit divergence check,
/// and the serve-side anomaly dump triggers.
///
//===----------------------------------------------------------------------===//

#include "janus/analysis/Divergence.h"
#include "janus/core/Janus.h"
#include "janus/obs/Recorder.h"
#include "janus/serve/Serve.h"
#include "janus/stm/Replay.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace janus;
using namespace janus::core;
using namespace janus::obs;
using stm::TaskFn;
using stm::TxContext;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + Name;
}

RecMeta sampleMeta() {
  RecMeta M;
  M.Workload = "Weka";
  M.Engine = "threads";
  M.Seed = 100;
  M.Threads = 8;
  M.Shards = 4;
  M.Production = 1;
  M.Rounds = 5;
  M.Detector = "sequence";
  M.Abstraction = true;
  M.Fallback = true;
  M.Faults = "abort@*.1;throw@2.1;delay@*.2=3";
  M.Reason = "watchdog";
  M.Written = 1234;
  M.Overwritten = 0;
  M.NumLanes = 9;
  M.SampleEvery = 1;
  return M;
}

std::vector<RecEvent> sampleEvents(size_t N) {
  std::vector<RecEvent> Out;
  for (size_t I = 0; I != N; ++I) {
    RecEvent E;
    E.Seq = I + 1;
    E.Clock = I / 2 + 1;
    E.TimeUs = 10 * I;
    E.Tid = static_cast<uint32_t>(I / 2 + 1);
    E.Attempt = 1;
    E.Aux = I % 2 ? 0 : RecAbortConflict;
    E.Kind = static_cast<uint8_t>(I % 2 ? RecKind::Commit : RecKind::Begin);
    E.Mode = 0;
    E.Lane = static_cast<uint16_t>(I % 3);
    Out.push_back(E);
  }
  return Out;
}

/// Conflicting counter tasks: every task adds to the same counter, so
/// write-set detection produces real conflict aborts to record.
std::vector<TaskFn> counterTasks(const Location &C, int N) {
  std::vector<TaskFn> Tasks;
  for (int I = 1; I <= N; ++I)
    Tasks.push_back([C, I](TxContext &Tx) {
      Tx.add(C, I);
      Tx.localWork(2.0);
    });
  return Tasks;
}

JanusConfig recordingConfig(EngineKind Engine, unsigned Shards = 1) {
  JanusConfig Cfg;
  Cfg.Engine = Engine;
  Cfg.Shards = Shards;
  Cfg.Detector = DetectorKind::WriteSet; // No training needed.
  Cfg.Threads = 4;
  Cfg.Record.Enabled = true;
  return Cfg;
}

/// Records a run of \p N conflicting tasks, replays the dump on the
/// simulated engine, and returns the divergence report (with any
/// execution problems merged in, like `janus replay` does).
analysis::DivergenceReport
recordAndReplay(EngineKind Engine, unsigned Shards, int N,
                int64_t *RecordedValue = nullptr,
                int64_t *ReplayedValue = nullptr) {
  Janus J(recordingConfig(Engine, Shards));
  Location C(J.registry().registerObject("counter"));
  J.runOutOfOrder(counterTasks(C, N));
  if (RecordedValue)
    *RecordedValue = J.valueAt(C).asInt();

  stm::ReplaySchedule Sched;
  std::string Err;
  EXPECT_TRUE(buildReplaySchedule(J.recorder()->snapshot(), Shards, Sched,
                                  &Err))
      << Err;
  EXPECT_EQ(Sched.MaxTid, static_cast<uint32_t>(N));

  std::vector<std::string> Problems;
  JanusConfig RCfg;
  RCfg.Engine = EngineKind::Simulated;
  RCfg.Detector = DetectorKind::WriteSet;
  RCfg.Threads = 4;
  RCfg.RecordTrace = true;
  RCfg.Replay = &Sched;
  RCfg.ReplayProblems = &Problems;
  Janus R(RCfg);
  Location RC(R.registry().registerObject("counter"));
  R.runOutOfOrder(counterTasks(RC, N));
  if (ReplayedValue)
    *ReplayedValue = R.valueAt(RC).asInt();

  analysis::DivergenceReport DR =
      analysis::checkDivergence(Sched, R.lastTrace());
  DR.Findings.insert(DR.Findings.begin(), Problems.begin(), Problems.end());
  return DR;
}

} // namespace

//===----------------------------------------------------------------------===//
// Ring buffer
//===----------------------------------------------------------------------===//

TEST(RecorderTest, RingWrapOverwritesOldestAndAccountsDrops) {
  RecorderConfig Cfg;
  Cfg.Enabled = true;
  Cfg.PerLaneCap = 16;
  Recorder R(Cfg, /*NumLanes=*/2);
  for (uint32_t I = 1; I <= 50; ++I)
    R.record(/*Lane=*/0, RecKind::Begin, I, 1, I);
  EXPECT_EQ(R.written(), 50u);
  EXPECT_EQ(R.overwritten(), 34u);

  std::vector<RecEvent> S = R.snapshot();
  ASSERT_EQ(S.size(), 16u);
  // The survivors are the most recent records, in global order.
  for (size_t I = 0; I != S.size(); ++I)
    EXPECT_EQ(S[I].Seq, 35 + I);
}

TEST(RecorderTest, LanesAreIndependentAndMergedBySeq) {
  RecorderConfig Cfg;
  Cfg.Enabled = true;
  Recorder R(Cfg, 3);
  R.record(0, RecKind::Begin, 1, 1, 0);
  R.record(2, RecKind::Begin, 2, 1, 0);
  R.record(1, RecKind::Commit, 1, 1, 1, 0, 1);
  std::vector<RecEvent> S = R.snapshot();
  ASSERT_EQ(S.size(), 3u);
  EXPECT_EQ(S[0].Lane, 0u);
  EXPECT_EQ(S[1].Lane, 2u);
  EXPECT_EQ(S[2].Lane, 1u);
  EXPECT_EQ(R.overwritten(), 0u);
}

TEST(RecorderTest, SamplingRuleMatchesObserver) {
  RecorderConfig Cfg;
  Cfg.Enabled = true;
  Cfg.SampleEvery = 4;
  Recorder R(Cfg, 1);
  EXPECT_TRUE(R.sampled(1));
  EXPECT_FALSE(R.sampled(2));
  EXPECT_TRUE(R.sampled(5));
  Cfg.SampleEvery = 1;
  Recorder All(Cfg, 1);
  for (uint32_t T = 1; T <= 8; ++T)
    EXPECT_TRUE(All.sampled(T));
}

//===----------------------------------------------------------------------===//
// .jrec codec
//===----------------------------------------------------------------------===//

TEST(JrecCodecTest, RoundTripPreservesMetaAndEvents) {
  const std::string Path = tempPath("roundtrip.jrec");
  RecMeta In = sampleMeta();
  std::vector<RecEvent> Events = sampleEvents(20);
  std::string Err;
  ASSERT_TRUE(writeJrec(Path, In, Events, &Err)) << Err;

  RecMeta Out;
  std::vector<RecEvent> Decoded;
  ASSERT_TRUE(readJrec(Path, Out, Decoded, &Err)) << Err;
  EXPECT_EQ(Out.Workload, In.Workload);
  EXPECT_EQ(Out.Engine, In.Engine);
  EXPECT_EQ(Out.Seed, In.Seed);
  EXPECT_EQ(Out.Threads, In.Threads);
  EXPECT_EQ(Out.Shards, In.Shards);
  EXPECT_EQ(Out.Production, In.Production);
  EXPECT_EQ(Out.Rounds, In.Rounds);
  EXPECT_EQ(Out.Detector, In.Detector);
  EXPECT_EQ(Out.Abstraction, In.Abstraction);
  EXPECT_EQ(Out.Fallback, In.Fallback);
  EXPECT_EQ(Out.Faults, In.Faults);
  EXPECT_EQ(Out.Reason, In.Reason);
  EXPECT_EQ(Out.Written, In.Written);
  EXPECT_EQ(Out.Overwritten, In.Overwritten);
  EXPECT_EQ(Out.NumLanes, In.NumLanes);
  EXPECT_EQ(Out.SampleEvery, In.SampleEvery);

  ASSERT_EQ(Decoded.size(), Events.size());
  for (size_t I = 0; I != Events.size(); ++I) {
    EXPECT_EQ(Decoded[I].Seq, Events[I].Seq);
    EXPECT_EQ(Decoded[I].Clock, Events[I].Clock);
    EXPECT_EQ(Decoded[I].TimeUs, Events[I].TimeUs);
    EXPECT_EQ(Decoded[I].Tid, Events[I].Tid);
    EXPECT_EQ(Decoded[I].Attempt, Events[I].Attempt);
    EXPECT_EQ(Decoded[I].Aux, Events[I].Aux);
    EXPECT_EQ(Decoded[I].Kind, Events[I].Kind);
    EXPECT_EQ(Decoded[I].Mode, Events[I].Mode);
    EXPECT_EQ(Decoded[I].Lane, Events[I].Lane);
  }
}

TEST(JrecCodecTest, EmptyDumpRoundTrips) {
  const std::string Path = tempPath("empty.jrec");
  std::string Err;
  ASSERT_TRUE(writeJrec(Path, sampleMeta(), {}, &Err)) << Err;
  RecMeta Out;
  std::vector<RecEvent> Decoded;
  ASSERT_TRUE(readJrec(Path, Out, Decoded, &Err)) << Err;
  EXPECT_TRUE(Decoded.empty());
}

TEST(JrecCodecTest, RejectsEveryTruncationAndByteFlip) {
  const std::string Path = tempPath("fuzz_src.jrec");
  std::string Err;
  ASSERT_TRUE(writeJrec(Path, sampleMeta(), sampleEvents(8), &Err)) << Err;
  std::ifstream In(Path, std::ios::binary);
  std::string Data((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  ASSERT_GT(Data.size(), 100u);

  const std::string Mutant = tempPath("fuzz_mut.jrec");
  auto Rejects = [&](const std::string &Bytes) {
    std::ofstream Out(Mutant, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    Out.close();
    RecMeta M;
    std::vector<RecEvent> E;
    std::string E2;
    return !readJrec(Mutant, M, E, &E2);
  };

  // Every truncation is caught (short prefix, sliced event, lost
  // trailer alike).
  for (size_t Len = 0; Len < Data.size(); Len += 7)
    EXPECT_TRUE(Rejects(Data.substr(0, Len))) << "truncated to " << Len;
  // Every single-byte corruption is caught by the checksum (or, for the
  // trailer bytes themselves, by the mismatch against the body).
  for (size_t Off = 0; Off < Data.size(); Off += 13) {
    std::string Flipped = Data;
    Flipped[Off] = static_cast<char>(Flipped[Off] ^ 0xff);
    EXPECT_TRUE(Rejects(Flipped)) << "byte flipped at " << Off;
  }
  std::remove(Mutant.c_str());
}

//===----------------------------------------------------------------------===//
// Schedule reconstruction
//===----------------------------------------------------------------------===//

TEST(ReplayScheduleTest, RejectsMissingBeginEvents) {
  // A speculative commit with no begin event: the stream is incomplete
  // (sampled or wrapped), so reconstruction must refuse.
  RecEvent E;
  E.Seq = 1;
  E.Clock = 2;
  E.Tid = 1;
  E.Attempt = 1;
  E.Kind = static_cast<uint8_t>(RecKind::Commit);
  E.Mode = 0; // Speculative.
  stm::ReplaySchedule Sched;
  std::string Err;
  EXPECT_FALSE(stm::buildReplaySchedule({E}, 1, Sched, &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(ReplayScheduleTest, RejectsNonDenseCommitClocks) {
  std::vector<RecEvent> Events;
  for (uint32_t T = 1; T <= 2; ++T) {
    RecEvent B;
    B.Seq = Events.size() + 1;
    B.Clock = 1;
    B.Tid = T;
    B.Attempt = 1;
    B.Kind = static_cast<uint8_t>(RecKind::Begin);
    Events.push_back(B);
    RecEvent C = B;
    C.Seq = Events.size() + 1;
    C.Clock = T == 1 ? 2 : 5; // Hole: clocks 3 and 4 are missing.
    C.Kind = static_cast<uint8_t>(RecKind::Commit);
    Events.push_back(C);
  }
  stm::ReplaySchedule Sched;
  std::string Err;
  EXPECT_FALSE(stm::buildReplaySchedule(Events, 1, Sched, &Err));
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// Record → replay round trips
//===----------------------------------------------------------------------===//

TEST(ReplayRoundTripTest, SimRecordingReplaysBitIdentically) {
  int64_t Recorded = 0, Replayed = 0;
  analysis::DivergenceReport DR = recordAndReplay(
      EngineKind::Simulated, 1, 24, &Recorded, &Replayed);
  EXPECT_TRUE(DR.clean()) << DR.summary();
  EXPECT_EQ(Recorded, Replayed);
}

TEST(ReplayRoundTripTest, ThreadedRecordingReplaysBitIdentically) {
  int64_t Recorded = 0, Replayed = 0;
  analysis::DivergenceReport DR = recordAndReplay(
      EngineKind::Threaded, 1, 32, &Recorded, &Replayed);
  EXPECT_TRUE(DR.clean()) << DR.summary();
  EXPECT_EQ(Recorded, Replayed);
}

TEST(ReplayRoundTripTest, ShardedRecordingReplaysBitIdentically) {
  int64_t Recorded = 0, Replayed = 0;
  analysis::DivergenceReport DR = recordAndReplay(
      EngineKind::Threaded, 8, 32, &Recorded, &Replayed);
  EXPECT_TRUE(DR.clean()) << DR.summary();
  EXPECT_EQ(Recorded, Replayed);
}

TEST(ReplayRoundTripTest, TamperedScheduleDiverges) {
  Janus J(recordingConfig(EngineKind::Threaded));
  Location C(J.registry().registerObject("counter"));
  const int N = 16;
  J.runOutOfOrder(counterTasks(C, N));

  stm::ReplaySchedule Sched;
  std::string Err;
  ASSERT_TRUE(buildReplaySchedule(J.recorder()->snapshot(), 1, Sched, &Err))
      << Err;
  // The `janus replay --probe-divergence` tamper: the final commit
  // becomes a conflict abort while the commit reference stays intact.
  for (size_t I = Sched.Steps.size(); I-- > 0;) {
    stm::ReplayStep &St = Sched.Steps[I];
    if (!St.Committed)
      continue;
    St.Committed = false;
    St.AbortReason = RecAbortConflict;
    St.End = St.CommitTime - 1;
    St.CommitTime = 0;
    St.Mode = 0;
    break;
  }

  std::vector<std::string> Problems;
  JanusConfig RCfg;
  RCfg.Engine = EngineKind::Simulated;
  RCfg.Detector = DetectorKind::WriteSet;
  RCfg.Threads = 4;
  RCfg.RecordTrace = true;
  RCfg.Replay = &Sched;
  RCfg.ReplayProblems = &Problems;
  Janus R(RCfg);
  Location RC(R.registry().registerObject("counter"));
  R.runOutOfOrder(counterTasks(RC, N));

  analysis::DivergenceReport DR =
      analysis::checkDivergence(Sched, R.lastTrace());
  EXPECT_FALSE(DR.clean());
}

TEST(ReplayRoundTripTest, EndToEndThroughJrecFile) {
  // The full pipeline the CLI runs: record, encode, decode, rebuild,
  // replay.
  Janus J(recordingConfig(EngineKind::Threaded));
  Location C(J.registry().registerObject("counter"));
  const int N = 20;
  J.runOutOfOrder(counterTasks(C, N));

  const std::string Path = tempPath("end_to_end.jrec");
  RecMeta Meta;
  Meta.Workload = "unit";
  Meta.Engine = "threads";
  Meta.Shards = 1;
  Meta.Written = J.recorder()->written();
  Meta.Overwritten = J.recorder()->overwritten();
  std::string Err;
  ASSERT_TRUE(writeJrec(Path, Meta, J.recorder()->snapshot(), &Err)) << Err;

  RecMeta MetaIn;
  std::vector<RecEvent> Events;
  ASSERT_TRUE(readJrec(Path, MetaIn, Events, &Err)) << Err;
  EXPECT_EQ(MetaIn.Overwritten, 0u);

  stm::ReplaySchedule Sched;
  ASSERT_TRUE(buildReplaySchedule(Events, MetaIn.Shards, Sched, &Err))
      << Err;

  std::vector<std::string> Problems;
  JanusConfig RCfg;
  RCfg.Engine = EngineKind::Simulated;
  RCfg.Detector = DetectorKind::WriteSet;
  RCfg.Threads = 4;
  RCfg.RecordTrace = true;
  RCfg.Replay = &Sched;
  RCfg.ReplayProblems = &Problems;
  Janus R(RCfg);
  Location RC(R.registry().registerObject("counter"));
  R.runOutOfOrder(counterTasks(RC, N));

  analysis::DivergenceReport DR =
      analysis::checkDivergence(Sched, R.lastTrace());
  DR.Findings.insert(DR.Findings.begin(), Problems.begin(), Problems.end());
  EXPECT_TRUE(DR.clean()) << DR.summary();
  EXPECT_EQ(J.valueAt(C), R.valueAt(RC));
}

//===----------------------------------------------------------------------===//
// Serve anomaly dumps
//===----------------------------------------------------------------------===//

TEST(ServeDumpTest, DumpFlagTriggersQuiescedDump) {
  using namespace janus::serve;
  JanusConfig Cfg;
  Cfg.Engine = EngineKind::Threaded;
  Cfg.Detector = DetectorKind::WriteSet;
  Cfg.Threads = 2;
  Cfg.Record.Enabled = true;
  Janus J(Cfg);
  Location C(J.registry().registerObject("counter"));
  std::vector<TaskFn> Pool{[C](TxContext &Tx) { Tx.add(C, 1); }};

  std::atomic<bool> DumpFlag{true}; // Pre-armed, as if SIGUSR2 arrived.
  std::vector<std::string> Reasons;
  ServeConfig SC;
  SC.BatchMax = 8;
  SC.DumpFlag = &DumpFlag;
  SC.DumpFn = [&](const char *Reason) {
    Reasons.push_back(Reason);
    // Quiesced: the snapshot races with no writer here. (It may be
    // empty — the poll can fire before the first batch runs.)
    (void)J.recorder()->snapshot();
  };
  Service S(J, Pool, SC);
  S.setReplySink([](const Reply &) {});
  for (int I = 0; I != 12; ++I)
    ASSERT_TRUE(S.submit(1, I, 0));
  S.requestStop();
  S.serve();

  ASSERT_FALSE(Reasons.empty());
  EXPECT_EQ(Reasons.front(), "sigusr2");
  EXPECT_FALSE(DumpFlag.load()); // Consumed, not re-fired.
  // The batches themselves were recorded (dumpable after the fact).
  EXPECT_GT(J.recorder()->snapshot().size(), 0u);
  EXPECT_TRUE(S.report().clean());
}

TEST(ServeDumpTest, ServeTagEventsCarryClientAndSubmission) {
  using namespace janus::serve;
  JanusConfig Cfg;
  Cfg.Engine = EngineKind::Threaded;
  Cfg.Detector = DetectorKind::WriteSet;
  Cfg.Threads = 2;
  Cfg.Record.Enabled = true;
  Janus J(Cfg);
  Location C(J.registry().registerObject("counter"));
  std::vector<TaskFn> Pool{[C](TxContext &Tx) { Tx.add(C, 1); }};

  Service S(J, Pool, ServeConfig{});
  S.setReplySink([](const Reply &) {});
  for (int I = 1; I <= 6; ++I)
    ASSERT_TRUE(S.submit(/*Client=*/7, /*SubId=*/100 + I, 0));
  S.requestStop();
  S.serve();

  size_t Tags = 0;
  for (const RecEvent &E : J.recorder()->snapshot())
    if (E.Kind == static_cast<uint8_t>(RecKind::ServeTag)) {
      ++Tags;
      EXPECT_EQ(E.Aux, 7u);       // Client id.
      EXPECT_GE(E.Clock, 101u);   // Submission id.
      EXPECT_LE(E.Clock, 106u);
    }
  EXPECT_EQ(Tags, 6u);
}
