//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for the CDCL SAT solver and the propositional
/// formula layer (Tseitin encoding, equivalence checking).
///
/// The property tests compare the solver against a brute-force
/// truth-table oracle on randomly generated instances with fixed seeds.
///
//===----------------------------------------------------------------------===//

#include "janus/sat/PropFormula.h"
#include "janus/sat/Solver.h"
#include "janus/support/Rng.h"

#include <gtest/gtest.h>

using namespace janus;
using namespace janus::sat;

namespace {

/// Brute-force satisfiability over at most 20 variables.
bool bruteForceSat(size_t NumVars,
                   const std::vector<std::vector<Lit>> &Clauses) {
  JANUS_ASSERT(NumVars <= 20, "too many variables for brute force");
  for (uint32_t Mask = 0; Mask < (1u << NumVars); ++Mask) {
    bool All = true;
    for (const auto &Clause : Clauses) {
      bool Some = false;
      for (Lit L : Clause) {
        bool V = (Mask >> L.var()) & 1;
        if (V != L.negated()) {
          Some = true;
          break;
        }
      }
      if (!Some) {
        All = false;
        break;
      }
    }
    if (All)
      return true;
  }
  return false;
}

} // namespace

TEST(LitTest, Packing) {
  Lit P = Lit::pos(3);
  EXPECT_EQ(P.var(), 3u);
  EXPECT_FALSE(P.negated());
  EXPECT_TRUE((~P).negated());
  EXPECT_EQ((~~P), P);
  EXPECT_NE(P, ~P);
  EXPECT_FALSE(Lit().valid());
  EXPECT_TRUE(P.valid());
}

TEST(SolverTest, EmptyInstanceIsSat) {
  Solver S;
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

TEST(SolverTest, SingleUnit) {
  Solver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addUnit(Lit::pos(A)));
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(A));
}

TEST(SolverTest, ContradictoryUnitsAreUnsat) {
  Solver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addUnit(Lit::pos(A)));
  EXPECT_FALSE(S.addUnit(Lit::neg(A)));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(SolverTest, EmptyClauseIsUnsat) {
  Solver S;
  EXPECT_FALSE(S.addClause({}));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(SolverTest, TautologyIsDropped) {
  Solver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addBinary(Lit::pos(A), Lit::neg(A)));
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

TEST(SolverTest, ImplicationChainPropagates) {
  Solver S;
  std::vector<Var> Vs;
  for (int I = 0; I != 20; ++I)
    Vs.push_back(S.newVar());
  // v0 and (v_i -> v_{i+1}) forces all true.
  S.addUnit(Lit::pos(Vs[0]));
  for (int I = 0; I + 1 != 20; ++I)
    S.addBinary(Lit::neg(Vs[I]), Lit::pos(Vs[I + 1]));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  for (Var V : Vs)
    EXPECT_TRUE(S.modelValue(V));
}

TEST(SolverTest, PigeonholeThreeIntoTwoIsUnsat) {
  // 3 pigeons, 2 holes: classic small UNSAT instance requiring search.
  Solver S;
  Var P[3][2];
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (int I = 0; I != 3; ++I)
    S.addBinary(Lit::pos(P[I][0]), Lit::pos(P[I][1]));
  for (int H = 0; H != 2; ++H)
    for (int I = 0; I != 3; ++I)
      for (int J = I + 1; J != 3; ++J)
        S.addBinary(Lit::neg(P[I][H]), Lit::neg(P[J][H]));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(SolverTest, XorChainSatWithOddParity) {
  // (a xor b xor c = 1) encoded in CNF; satisfiable.
  Solver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addTernary(Lit::pos(A), Lit::pos(B), Lit::pos(C));
  S.addTernary(Lit::pos(A), Lit::neg(B), Lit::neg(C));
  S.addTernary(Lit::neg(A), Lit::pos(B), Lit::neg(C));
  S.addTernary(Lit::neg(A), Lit::neg(B), Lit::pos(C));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  int Parity = S.modelValue(A) + S.modelValue(B) + S.modelValue(C);
  EXPECT_EQ(Parity % 2, 1);
}

TEST(SolverTest, SolveIsRepeatableAndIncremental) {
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  S.addBinary(Lit::pos(A), Lit::pos(B));
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_TRUE(S.addUnit(Lit::neg(A)));
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(B));
  // B was forced at level 0, so asserting !B is an immediate
  // contradiction and addUnit reports it.
  EXPECT_FALSE(S.addUnit(Lit::neg(B)));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(SolverTest, AssumptionsRestrictModels) {
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  S.addBinary(Lit::pos(A), Lit::pos(B));
  EXPECT_EQ(S.solveWith({Lit::neg(A)}), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(B));
  EXPECT_EQ(S.solveWith({Lit::neg(A), Lit::neg(B)}), SolveResult::Unsat);
  // The solver must remain usable without the assumptions.
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

/// Property: solver verdict matches the brute-force oracle on random
/// 3-CNF instances across a density sweep.
class SolverRandomCnf : public ::testing::TestWithParam<int> {};

TEST_P(SolverRandomCnf, MatchesBruteForce) {
  Rng R(1000 + GetParam());
  for (int Iter = 0; Iter != 60; ++Iter) {
    size_t NumVars = 4 + R.below(8);            // 4..11 vars
    size_t NumClauses = NumVars + GetParam() +  // density varies by param
                        R.below(3 * NumVars);
    Solver S;
    std::vector<std::vector<Lit>> Clauses;
    for (size_t I = 0; I != NumVars; ++I)
      S.newVar();
    bool Consistent = true;
    for (size_t I = 0; I != NumClauses; ++I) {
      std::vector<Lit> Clause;
      size_t Width = 1 + R.below(3);
      for (size_t J = 0; J != Width; ++J)
        Clause.push_back(
            Lit(static_cast<Var>(R.below(NumVars)), R.chance(1, 2)));
      Clauses.push_back(Clause);
      Consistent = S.addClause(Clause) && Consistent;
    }
    bool Expected = bruteForceSat(NumVars, Clauses);
    SolveResult Got = Consistent ? S.solve() : SolveResult::Unsat;
    EXPECT_EQ(Got == SolveResult::Sat, Expected)
        << "seed iteration " << Iter << " param " << GetParam();
    // When the solver claims Sat, its model must satisfy every clause.
    if (Got == SolveResult::Sat) {
      for (const auto &Clause : Clauses) {
        bool Some = false;
        for (Lit L : Clause)
          Some = Some || (S.modelValue(L.var()) != L.negated());
        EXPECT_TRUE(Some) << "model does not satisfy a clause";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DensitySweep, SolverRandomCnf,
                         ::testing::Values(0, 2, 5, 9, 14));

TEST(FormulaArenaTest, ConstantFolding) {
  FormulaArena A;
  Formula T = A.mkTrue(), F = A.mkFalse();
  Formula X = A.mkAtom(0);
  EXPECT_EQ(A.mkAnd(T, X), X);
  EXPECT_EQ(A.mkAnd(F, X), F);
  EXPECT_EQ(A.mkOr(T, X), T);
  EXPECT_EQ(A.mkOr(F, X), X);
  EXPECT_EQ(A.mkNot(A.mkNot(X)), X);
  EXPECT_EQ(A.mkIff(X, X), T);
  EXPECT_EQ(A.mkAnd(X, X), X);
}

TEST(FormulaArenaTest, HashConsingSharesNodes) {
  FormulaArena A;
  Formula X = A.mkAtom(0), Y = A.mkAtom(1);
  EXPECT_EQ(A.mkAnd(X, Y), A.mkAnd(Y, X)); // Canonical operand order.
  EXPECT_EQ(A.mkOr(X, Y), A.mkOr(X, Y));
}

TEST(FormulaArenaTest, CollectAtoms) {
  FormulaArena A;
  Formula F =
      A.mkAnd(A.mkAtom(3), A.mkOr(A.mkAtom(1), A.mkNot(A.mkAtom(3))));
  std::vector<uint32_t> Atoms;
  A.collectAtoms(F, Atoms);
  std::sort(Atoms.begin(), Atoms.end());
  EXPECT_EQ(Atoms, (std::vector<uint32_t>{1, 3}));
}

TEST(FormulaArenaTest, EvaluateMatchesSemantics) {
  FormulaArena A;
  Formula X = A.mkAtom(0), Y = A.mkAtom(1);
  Formula F = A.mkIff(A.mkAnd(X, Y), A.mkNot(A.mkOr(A.mkNot(X), A.mkNot(Y))));
  // De Morgan: F is valid.
  for (bool VX : {false, true})
    for (bool VY : {false, true})
      EXPECT_TRUE(A.evaluate(F, {VX, VY}));
}

TEST(EquivalenceTest, DeMorganLawsHold) {
  FormulaArena A;
  Formula X = A.mkAtom(0), Y = A.mkAtom(1);
  EXPECT_EQ(checkEquivalent(A, A.mkNot(A.mkAnd(X, Y)),
                            A.mkOr(A.mkNot(X), A.mkNot(Y)), {}),
            Equivalence::Equivalent);
  EXPECT_EQ(checkEquivalent(A, A.mkNot(A.mkOr(X, Y)),
                            A.mkAnd(A.mkNot(X), A.mkNot(Y)), {}),
            Equivalence::Equivalent);
  EXPECT_EQ(checkEquivalent(A, X, Y, {}), Equivalence::Inequivalent);
}

TEST(EquivalenceTest, AxiomsEnableEquivalence) {
  // Under the mutual-exclusion axiom !(x & y) (as for two distinct
  // constant equalities on one column), x is equivalent to x & !y.
  FormulaArena A;
  Formula X = A.mkAtom(0), Y = A.mkAtom(1);
  Formula Mutex = A.mkNot(A.mkAnd(X, Y));
  EXPECT_EQ(checkEquivalent(A, X, A.mkAnd(X, A.mkNot(Y)), {Mutex}),
            Equivalence::Equivalent);
  EXPECT_EQ(checkEquivalent(A, X, A.mkAnd(X, A.mkNot(Y)), {}),
            Equivalence::Inequivalent);
}

/// Property: checkEquivalent agrees with truth-table equivalence on
/// random formulas over few atoms.
class EquivalenceRandom : public ::testing::TestWithParam<int> {};

namespace {

Formula randomFormula(FormulaArena &A, Rng &R, int Depth, int NumAtoms) {
  if (Depth == 0 || R.chance(1, 4))
    return A.mkAtom(static_cast<uint32_t>(R.below(NumAtoms)));
  switch (R.below(4)) {
  case 0:
    return A.mkNot(randomFormula(A, R, Depth - 1, NumAtoms));
  case 1:
    return A.mkAnd(randomFormula(A, R, Depth - 1, NumAtoms),
                   randomFormula(A, R, Depth - 1, NumAtoms));
  case 2:
    return A.mkOr(randomFormula(A, R, Depth - 1, NumAtoms),
                  randomFormula(A, R, Depth - 1, NumAtoms));
  default:
    return A.mkIff(randomFormula(A, R, Depth - 1, NumAtoms),
                   randomFormula(A, R, Depth - 1, NumAtoms));
  }
}

} // namespace

TEST_P(EquivalenceRandom, MatchesTruthTable) {
  Rng R(500 + GetParam());
  const int NumAtoms = 4;
  for (int Iter = 0; Iter != 40; ++Iter) {
    FormulaArena A;
    Formula F = randomFormula(A, R, 4, NumAtoms);
    Formula G = randomFormula(A, R, 4, NumAtoms);
    bool TableEq = true;
    for (uint32_t Mask = 0; Mask != (1u << NumAtoms); ++Mask) {
      std::vector<bool> Vals;
      for (int I = 0; I != NumAtoms; ++I)
        Vals.push_back((Mask >> I) & 1);
      if (A.evaluate(F, Vals) != A.evaluate(G, Vals)) {
        TableEq = false;
        break;
      }
    }
    EXPECT_EQ(checkEquivalent(A, F, G, {}) == Equivalence::Equivalent,
              TableEq)
        << "iteration " << Iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceRandom,
                         ::testing::Values(1, 2, 3, 4));

TEST(SolverStatsTest, CountsActivity) {
  Solver S;
  Var P[3][2];
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (int I = 0; I != 3; ++I)
    S.addBinary(Lit::pos(P[I][0]), Lit::pos(P[I][1]));
  for (int H = 0; H != 2; ++H)
    for (int I = 0; I != 3; ++I)
      for (int J = I + 1; J != 3; ++J)
        S.addBinary(Lit::neg(P[I][H]), Lit::neg(P[J][H]));
  ASSERT_EQ(S.solve(), SolveResult::Unsat);
  EXPECT_GT(S.stats().Conflicts, 0u);
  EXPECT_GT(S.stats().Propagations, 0u);
}

TEST(SolverBudgetTest, BudgetYieldsUnknown) {
  // A hard-enough pigeonhole instance with a tiny conflict budget should
  // report Unknown rather than a wrong verdict.
  Solver S;
  const int N = 7; // 7 pigeons into 6 holes.
  std::vector<std::vector<Var>> P(N, std::vector<Var>(N - 1));
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (int I = 0; I != N; ++I) {
    std::vector<Lit> AtLeast;
    for (int H = 0; H != N - 1; ++H)
      AtLeast.push_back(Lit::pos(P[I][H]));
    S.addClause(AtLeast);
  }
  for (int H = 0; H != N - 1; ++H)
    for (int I = 0; I != N; ++I)
      for (int J = I + 1; J != N; ++J)
        S.addBinary(Lit::neg(P[I][H]), Lit::neg(P[J][H]));
  EXPECT_EQ(S.solve(/*ConflictBudget=*/5), SolveResult::Unknown);
  // With a generous budget the instance resolves to Unsat.
  EXPECT_EQ(S.solve(/*ConflictBudget=*/2000000), SolveResult::Unsat);
}

TEST(SolverDimacsTest, RendersClausesAndUnits) {
  Solver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addUnit(Lit::pos(A));
  S.addTernary(Lit::neg(A), Lit::pos(B), Lit::pos(C));
  std::string Text = S.toDimacs();
  EXPECT_NE(Text.find("p cnf 3"), std::string::npos);
  EXPECT_NE(Text.find("1 0"), std::string::npos); // The unit.
  // Level-0 simplification dropped the falsified -1 literal from the
  // ternary, leaving 2 ∨ 3.
  EXPECT_NE(Text.find("2 3 0"), std::string::npos);
}

TEST(SolverDimacsTest, UnsatDatabaseEmitsEmptyClause) {
  Solver S;
  Var A = S.newVar();
  S.addUnit(Lit::pos(A));
  S.addUnit(Lit::neg(A));
  std::string Text = S.toDimacs();
  EXPECT_NE(Text.find("\n0\n"), std::string::npos);
}

TEST(SolverDimacsTest, RoundTripThroughNaiveParser) {
  // Parse the dump back into a fresh solver and check the verdicts
  // agree (a lightweight DIMACS reader lives only in this test).
  Rng R(777);
  for (int Iter = 0; Iter != 20; ++Iter) {
    Solver S;
    size_t NumVars = 3 + R.below(5);
    for (size_t I = 0; I != NumVars; ++I)
      S.newVar();
    for (size_t I = 0, E = 2 + R.below(8); I != E; ++I) {
      std::vector<Lit> Clause;
      for (size_t J = 0, W = 1 + R.below(3); J != W; ++J)
        Clause.push_back(
            Lit(static_cast<Var>(R.below(NumVars)), R.chance(1, 2)));
      S.addClause(Clause);
    }
    std::string Text = S.toDimacs();

    Solver S2;
    size_t Pos = Text.find('\n') + 1; // Skip the problem line.
    for (size_t I = 0; I != NumVars; ++I)
      S2.newVar();
    std::vector<Lit> Clause;
    bool Consistent = true;
    while (Pos < Text.size()) {
      size_t End = Text.find_first_of(" \n", Pos);
      std::string Tok = Text.substr(Pos, End - Pos);
      Pos = End + 1;
      if (Tok.empty())
        continue;
      long V = std::stol(Tok);
      if (V == 0) {
        Consistent = S2.addClause(Clause) && Consistent;
        Clause.clear();
      } else {
        Var Id = static_cast<Var>(std::labs(V) - 1);
        Clause.push_back(Lit(Id, V < 0));
      }
    }
    SolveResult R1 = S.solve();
    SolveResult R2 = Consistent ? S2.solve() : SolveResult::Unsat;
    EXPECT_EQ(R1, R2) << "iteration " << Iter;
  }
}
