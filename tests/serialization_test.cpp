//===----------------------------------------------------------------------===//
///
/// \file
/// Round-trip property tests for the persistence layer: Term and
/// Condition text encodings, commutativity-cache serialization through
/// the full training pipeline, and the Janus cache file I/O.
///
//===----------------------------------------------------------------------===//

#include "janus/adt/TxCounter.h"
#include "janus/conflict/CommutativityCache.h"
#include "janus/core/Janus.h"
#include "janus/support/Rng.h"
#include "janus/symbolic/Condition.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace janus;
using namespace janus::symbolic;

namespace {

Term randomTerm(Rng &R) {
  switch (R.below(5)) {
  case 0: {
    // Random non-integer constant.
    switch (R.below(4)) {
    case 0:
      return Term::constant(Value::absent());
    case 1:
      return Term::constant(Value::unit());
    case 2:
      return Term::constant(Value::of(R.chance(1, 2)));
    default:
      return Term::constant(Value::of("s" + std::to_string(R.below(10))));
    }
  }
  case 1: {
    // Random linear term.
    Term T = Term::constant(Value::of(R.range(-50, 50)));
    for (int I = 0, E = static_cast<int>(R.below(3)); I != E; ++I) {
      Term Sym = Term::intSym(static_cast<SymId>(R.below(6)));
      for (int K = 0, C = static_cast<int>(R.below(3)); K != C; ++K)
        Sym = *Term::add(Sym, Term::intSym(static_cast<SymId>(R.below(6))));
      T = *Term::add(T, Sym);
    }
    return T;
  }
  case 2:
    return Term::opaqueSym(static_cast<SymId>(R.below(2000)));
  case 3:
    return Term::readPlus(static_cast<uint32_t>(R.below(8)),
                          R.range(-8, 8));
  default:
    return Term::constant(Value::of(R.range(-1000, 1000)));
  }
}

Condition randomCondition(Rng &R) {
  if (R.chance(1, 8))
    return Condition::never();
  Condition C = Condition::valid();
  for (int I = 0, E = static_cast<int>(R.below(4)); I != E; ++I) {
    Term L = randomTerm(R), Rhs = randomTerm(R);
    // Avoid ReadPlus in conditions (they are resolved before condition
    // construction in the real pipeline, and staticallyEqual asserts).
    if (L.kind() == Term::Kind::ReadPlus ||
        Rhs.kind() == Term::Kind::ReadPlus)
      continue;
    C.requireEqual(L, Rhs);
  }
  return C;
}

} // namespace

class TermRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TermRoundTrip, SerializeDeserializeIsIdentity) {
  Rng R(GetParam());
  for (int Iter = 0; Iter != 500; ++Iter) {
    Term T = randomTerm(R);
    std::string Text;
    T.serialize(Text);
    size_t Pos = 0;
    std::optional<Term> Back = Term::deserialize(Text, Pos);
    ASSERT_TRUE(Back.has_value())
        << "iteration " << Iter << " text '" << Text << "'";
    EXPECT_EQ(*Back, T) << "text '" << Text << "'";
    EXPECT_EQ(Pos, Text.size()) << "trailing garbage consumed";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TermRoundTrip,
                         ::testing::Values(61, 62, 63));

TEST(TermSerializationTest, StringsWithSpacesAndColons) {
  Term T = Term::constant(Value::of("a b:c 12 L Q"));
  std::string Text;
  T.serialize(Text);
  size_t Pos = 0;
  auto Back = Term::deserialize(Text, Pos);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, T);
}

TEST(TermSerializationTest, RejectsGarbage) {
  size_t Pos = 0;
  EXPECT_EQ(Term::deserialize("", Pos), std::nullopt);
  Pos = 0;
  EXPECT_EQ(Term::deserialize("X 1 2", Pos), std::nullopt);
  Pos = 0;
  EXPECT_EQ(Term::deserialize("L 5", Pos), std::nullopt); // Missing count.
  Pos = 0;
  EXPECT_EQ(Term::deserialize("C S9:abc", Pos), std::nullopt); // Short str.
}

class ConditionRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConditionRoundTrip, SerializeDeserializePreservesSemantics) {
  Rng R(GetParam());
  for (int Iter = 0; Iter != 200; ++Iter) {
    Condition C = randomCondition(R);
    std::string Text;
    C.serialize(Text);
    size_t Pos = 0;
    auto Back = Condition::deserialize(Text, Pos);
    ASSERT_TRUE(Back.has_value()) << "text '" << Text << "'";
    EXPECT_EQ(Back->state(), C.state());
    EXPECT_EQ(Back->atoms().size(), C.atoms().size());
    // Semantic equivalence under random bindings.
    for (int Probe = 0; Probe != 10; ++Probe) {
      Bindings B;
      for (SymId S = 0; S != 8; ++S)
        B[S] = Value::of(R.range(-3, 3));
      EXPECT_EQ(C.evaluate(B), Back->evaluate(B));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConditionRoundTrip,
                         ::testing::Values(71, 72, 73));

TEST(CacheFileTest, TrainedCacheSurvivesDisk) {
  namespace core = janus::core;
  const char *Path = "janus_cache_test.txt";

  std::string Exported;
  {
    core::Janus J;
    adt::TxCounter Work = adt::TxCounter::create(J.registry(), "work");
    std::vector<stm::TaskFn> Tasks;
    for (int I = 1; I <= 5; ++I)
      Tasks.push_back([Work, I](stm::TxContext &Tx) {
        Work.add(Tx, I);
        Work.sub(Tx, I);
      });
    J.train(Tasks);
    ASSERT_GT(J.cache()->size(), 0u);
    ASSERT_TRUE(J.saveCacheFile(Path));
    Exported = J.exportCache();
  }

  {
    core::Janus J;
    adt::TxCounter Work = adt::TxCounter::create(J.registry(), "work");
    ASSERT_TRUE(J.loadCacheFile(Path));
    EXPECT_EQ(J.exportCache(), Exported);
    // The reloaded cache answers production queries.
    std::vector<stm::TaskFn> Tasks;
    for (int I = 0; I != 16; ++I)
      Tasks.push_back([Work](stm::TxContext &Tx) {
        Work.add(Tx, 42);
        Work.sub(Tx, 42);
      });
    J.runOutOfOrder(Tasks);
    EXPECT_EQ(J.runStats().Retries.load(), 0u);
    EXPECT_GT(J.detectorStats().CacheHits.load(), 0u);
  }
  std::remove(Path);
}

TEST(CacheFileTest, MissingFileFails) {
  core::Janus J;
  EXPECT_FALSE(J.loadCacheFile("/nonexistent/dir/cache.txt"));
  EXPECT_FALSE(J.saveCacheFile("/nonexistent/dir/cache.txt"));
}

TEST(CacheSerializationTest, FullTrainingPipelineRoundTrip) {
  // Serialize a cache produced by real training over every workload
  // pattern shape (adds, writes, push/pop, erases) and check the text
  // reparses to an identical cache.
  ObjectRegistry Reg;
  ObjectId A = Reg.registerObject("list.cell");
  auto Cache = std::make_shared<conflict::CommutativityCache>();
  training::Trainer T(Reg, Cache);
  stm::Snapshot S;
  S = S.set(Location(A, "size"), Value::of(int64_t(0)));
  std::vector<stm::TaskFn> Tasks;
  for (int I = 1; I <= 4; ++I)
    Tasks.push_back([A, I](stm::TxContext &Tx) {
      // Push/pop with varying payloads.
      Value Size = Tx.read(Location(A, "size"));
      int64_t N = Size.isInt() ? Size.asInt() : 0;
      Tx.write(Location(A, "size"), Value::of(N + 1));
      Tx.write(Location(A, N), Value::of(int64_t(I * 10)));
      Tx.write(Location(A, "size"), Value::of(N));
      Tx.write(Location(A, N), Value::absent());
      Tx.add(Location(A, "sum"), I);
      Tx.add(Location(A, "sum"), -I);
    });
  T.trainOn(S, Tasks);
  ASSERT_GT(Cache->size(), 0u);

  std::string Text = Cache->serialize();
  conflict::CommutativityCache Back;
  ASSERT_TRUE(Back.deserializeInto(Text));
  EXPECT_EQ(Back.size(), Cache->size());
  EXPECT_EQ(Back.serialize(), Text);
}

TEST(TrainingArtifactTest, RelaxationsAndCacheRoundTrip) {
  namespace core = janus::core;
  std::string Artifact;
  {
    core::JanusConfig Cfg;
    Cfg.Training.InferWAWRelaxation = true;
    core::Janus J(Cfg);
    adt::TxCounter Work = adt::TxCounter::create(J.registry(), "work");
    ObjectId Ctx = J.registry().registerObject("ctx.file");
    std::vector<stm::TaskFn> Tasks;
    for (int I = 0; I != 4; ++I)
      Tasks.push_back([Work, Ctx, I](stm::TxContext &Tx) {
        Tx.write(Location(Ctx), Value::of(int64_t(I))); // Define...
        Tx.read(Location(Ctx));                         // ...before use.
        Work.add(Tx, 1);
      });
    J.train(Tasks);
    ASSERT_TRUE(J.registry().info(Ctx).Relax.TolerateWAW); // Inferred.
    Artifact = J.exportTrainingArtifact();
  }

  {
    core::Janus J;
    adt::TxCounter Work = adt::TxCounter::create(J.registry(), "work");
    (void)Work; // Registration is the point; the handle itself is unused.
    ObjectId Ctx = J.registry().registerObject("ctx.file");
    ASSERT_TRUE(J.importTrainingArtifact(Artifact));
    // The inferred relaxation came along with the cache.
    EXPECT_TRUE(J.registry().info(Ctx).Relax.TolerateWAW);
    EXPECT_GT(J.cache()->size(), 0u);
    // And re-export is stable.
    EXPECT_EQ(J.exportTrainingArtifact(), Artifact);
  }
}

TEST(TrainingArtifactTest, RejectsGarbage) {
  core::Janus J;
  EXPECT_FALSE(J.importTrainingArtifact("bogus"));
  EXPECT_FALSE(J.importTrainingArtifact(
      "janus-training-artifact v1\nrelax oops\nendrelax\n"));
  EXPECT_TRUE(J.importTrainingArtifact(
      "janus-training-artifact v1\nendrelax\n"
      "janus-commutativity-cache v1\n"));
}
