//===----------------------------------------------------------------------===//
///
/// \file
/// Unit, integration and property tests for the training phase
/// (paper §5.1): dependence-graph construction, sequence mining,
/// condition computation, SAT cross-checking, relaxation inference —
/// and the end-to-end soundness property that cache-answered queries
/// always agree with the exact online check.
///
//===----------------------------------------------------------------------===//

#include "janus/conflict/OnlineConflict.h"
#include "janus/conflict/SequenceDetector.h"
#include "janus/stm/ThreadedRuntime.h"
#include "janus/support/Rng.h"
#include "janus/training/DependenceGraph.h"
#include "janus/verify/RelationalCheck.h"
#include "janus/training/Trainer.h"

#include <gtest/gtest.h>

using namespace janus;
using namespace janus::training;
using namespace janus::verify;
using namespace janus::symbolic;
using conflict::CommutativityCache;
using conflict::PairQuery;
using stm::LogEntry;
using stm::Snapshot;
using stm::TaskFn;
using stm::TxContext;
using stm::TxLog;

// ---------------------------------------------------------------------------
// Dependence graph.
// ---------------------------------------------------------------------------

TEST(DependenceGraphTest, ChainsPerLocation) {
  ObjectId A{1}, B{2};
  std::vector<TxLog> Logs = {
      {{Location(A), LocOp::add(1)}, {Location(B), LocOp::read()}},
      {{Location(A), LocOp::add(-1)}},
  };
  DependenceGraph G(Logs);
  EXPECT_EQ(G.nodes().size(), 3u);
  // Edges: task 2's add on A depends on task 1's add on A.
  ASSERT_EQ(G.edges().size(), 1u);
  EXPECT_EQ(G.nodes()[G.edges()[0].first].Task, 2u);
  EXPECT_EQ(G.nodes()[G.edges()[0].second].Task, 1u);
  EXPECT_EQ(G.locationChains().at(Location(A)).size(), 2u);
  EXPECT_EQ(G.locationChains().at(Location(B)).size(), 1u);
}

TEST(DependenceGraphTest, TaskSubsequencePartitioning) {
  ObjectId A{1};
  std::vector<TxLog> Logs = {
      {{Location(A), LocOp::add(2)}, {Location(A), LocOp::add(-2)}},
      {{Location(A), LocOp::add(5)}},
      {{Location(A), LocOp::read()}},
  };
  DependenceGraph G(Logs);
  auto Subs = G.taskSubsequences();
  ASSERT_EQ(Subs[Location(A)].size(), 3u);
  EXPECT_EQ(Subs[Location(A)][0].Task, 1u);
  EXPECT_EQ(Subs[Location(A)][0].Seq.size(), 2u);
  EXPECT_EQ(Subs[Location(A)][1].Task, 2u);
  EXPECT_EQ(Subs[Location(A)][2].Seq[0].Kind, LocOpKind::Read);
}

// ---------------------------------------------------------------------------
// Relational / SAT cross-check.
// ---------------------------------------------------------------------------

TEST(RelationalCheckTest, LoweringWritesAndReads) {
  LocOpSeq Seq{LocOp::write(Value::of(3)), LocOp::read()};
  auto T = lowerToRelational(Value::absent(), Seq);
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(T->ops().size(), 2u);
}

TEST(RelationalCheckTest, CommuteViaSatAgreesOnClassicCases) {
  // Equal writes commute.
  EXPECT_EQ(commuteViaSat(Value::absent(), {LocOp::write(Value::of(5))},
                          {LocOp::write(Value::of(5))}),
            std::make_optional(true));
  // Different writes do not.
  EXPECT_EQ(commuteViaSat(Value::absent(), {LocOp::write(Value::of(5))},
                          {LocOp::write(Value::of(6))}),
            std::make_optional(false));
  // Balanced add pairs (identity) commute.
  EXPECT_EQ(commuteViaSat(Value::of(10), {LocOp::add(2), LocOp::add(-2)},
                          {LocOp::add(7), LocOp::add(-7)}),
            std::make_optional(true));
  // Plain adds commute (state-wise).
  EXPECT_EQ(commuteViaSat(Value::of(0), {LocOp::add(1)}, {LocOp::add(2)}),
            std::make_optional(true));
}

/// Property: on random sequences the SAT pipeline's state-commutativity
/// verdict matches direct concrete evaluation of both orders.
class SatCrossCheckProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SatCrossCheckProperty, MatchesConcreteStateCommutativity) {
  Rng R(GetParam());
  for (int Iter = 0; Iter != 80; ++Iter) {
    auto RandomSeq = [&R]() {
      LocOpSeq Seq;
      for (int I = 0, E = 1 + static_cast<int>(R.below(3)); I != E; ++I) {
        if (R.chance(1, 2))
          Seq.push_back(LocOp::add(R.range(-2, 2)));
        else
          Seq.push_back(LocOp::write(Value::of(R.range(0, 3))));
      }
      return Seq;
    };
    LocOpSeq A = RandomSeq(), B = RandomSeq();
    Value Entry = Value::of(R.range(-2, 2));

    SeqEval AB = evalSequence(evalSequence(Entry, A).Final, B);
    SeqEval BA = evalSequence(evalSequence(Entry, B).Final, A);
    bool Concrete = AB.Final == BA.Final;

    auto Sat = commuteViaSat(Entry, A, B);
    ASSERT_TRUE(Sat.has_value()) << "iteration " << Iter;
    EXPECT_EQ(*Sat, Concrete)
        << "iteration " << Iter << " A=" << sequenceToString(A)
        << " B=" << sequenceToString(B) << " entry=" << Entry.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatCrossCheckProperty,
                         ::testing::Values(13, 17, 19));

// ---------------------------------------------------------------------------
// Trainer.
// ---------------------------------------------------------------------------

namespace {

struct TrainWorld {
  ObjectRegistry Reg;
  ObjectId Work;
  std::shared_ptr<CommutativityCache> Cache;
  TrainWorld() : Cache(std::make_shared<CommutativityCache>()) {
    Work = Reg.registerObject("work");
  }
};

} // namespace

TEST(TrainerTest, LearnsIdentityPattern) {
  // Figure 1's loop: each task adds and subtracts the same weight.
  TrainWorld W;
  Trainer T(W.Reg, W.Cache);
  Snapshot S;
  std::vector<TaskFn> Tasks;
  for (int I = 1; I <= 4; ++I)
    Tasks.push_back([&W, I](TxContext &Tx) {
      Tx.add(Location(W.Work), I);
      Tx.add(Location(W.Work), -I);
    });
  T.trainOn(S, Tasks);
  EXPECT_GT(T.stats().CachedEntries, 0u);

  // Production: a detector answering from the cache sees no conflict
  // for fresh weights never observed in training.
  conflict::SequenceDetector D(W.Cache);
  TxLog Mine{{Location(W.Work), LocOp::add(100)},
             {Location(W.Work), LocOp::add(-100)}};
  auto Theirs = std::make_shared<const TxLog>(
      TxLog{{Location(W.Work), LocOp::add(55)},
            {Location(W.Work), LocOp::add(-55)}});
  EXPECT_FALSE(D.detectConflicts(Snapshot(), Mine, {Theirs}, W.Reg));
  EXPECT_GT(D.stats().CacheHits.load(), 0u);
  EXPECT_EQ(D.stats().CacheMisses.load(), 0u);
}

TEST(TrainerTest, AbstractionGeneralizesAcrossLengths) {
  // Training with 2 repetitions; production sequences have 5. With
  // abstraction the query hits; without, it misses.
  for (bool UseAbs : {true, false}) {
    TrainWorld W;
    TrainerConfig Cfg;
    Cfg.UseAbstraction = UseAbs;
    Trainer T(W.Reg, W.Cache, Cfg);
    Snapshot S;
    std::vector<TaskFn> Tasks(3, [&W](TxContext &Tx) {
      for (int K = 0; K != 2; ++K) {
        Tx.add(Location(W.Work), 7);
        Tx.add(Location(W.Work), -7);
      }
    });
    T.trainOn(S, Tasks);

    conflict::SequenceDetectorConfig DCfg;
    DCfg.UseAbstraction = UseAbs;
    conflict::SequenceDetector D(W.Cache, DCfg);
    TxLog Mine, TheirsLog;
    for (int K = 0; K != 5; ++K) {
      Mine.push_back({Location(W.Work), LocOp::add(9)});
      Mine.push_back({Location(W.Work), LocOp::add(-9)});
      TheirsLog.push_back({Location(W.Work), LocOp::add(3)});
      TheirsLog.push_back({Location(W.Work), LocOp::add(-3)});
    }
    auto Theirs = std::make_shared<const TxLog>(TheirsLog);
    D.detectConflicts(Snapshot(), Mine, {Theirs}, W.Reg);
    if (UseAbs) {
      EXPECT_EQ(D.stats().CacheMisses.load(), 0u) << "with abstraction";
    } else {
      EXPECT_GT(D.stats().CacheMisses.load(), 0u) << "without abstraction";
    }
  }
}

TEST(TrainerTest, EqualWritesConditionIsLearned) {
  // Weka pattern: tasks write colors; condition "values equal" cached.
  TrainWorld W;
  ObjectId Pixel = W.Reg.registerObject("pixel", "pixel.elem");
  Trainer T(W.Reg, W.Cache);
  Snapshot S;
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != 3; ++I)
    Tasks.push_back([&W, Pixel](TxContext &Tx) {
      Tx.write(Location(Pixel, 0), Value::of("black"));
    });
  T.trainOn(S, Tasks);

  conflict::SequenceDetector D(W.Cache);
  auto Attempt = [&](const char *MineColor, const char *TheirColor) {
    TxLog Mine{{Location(Pixel, 5), LocOp::write(Value::of(MineColor))}};
    auto Theirs = std::make_shared<const TxLog>(
        TxLog{{Location(Pixel, 5), LocOp::write(Value::of(TheirColor))}});
    return D.detectConflicts(Snapshot(), Mine, {Theirs}, W.Reg);
  };
  // Location (pixel, 5) was never trained on, but the class was.
  EXPECT_FALSE(Attempt("white", "white"));
  EXPECT_TRUE(Attempt("white", "red"));
  EXPECT_EQ(D.stats().CacheMisses.load(), 0u);
}

TEST(TrainerTest, MultipleRoundsAccumulate) {
  TrainWorld W;
  Trainer T(W.Reg, W.Cache);
  std::vector<TaskFn> AddTasks(3, [&W](TxContext &Tx) {
    Tx.add(Location(W.Work), 2);
  });
  std::vector<TaskFn> ReadTasks(3, [&W](TxContext &Tx) {
    Tx.read(Location(W.Work));
  });
  Snapshot S1, S2;
  T.trainOn(S1, AddTasks);
  size_t AfterFirst = W.Cache->size();
  T.trainOn(S2, ReadTasks);
  EXPECT_GT(W.Cache->size(), AfterFirst);
}

TEST(TrainerTest, SatCrossCheckRuns) {
  TrainWorld W;
  TrainerConfig Cfg;
  Cfg.VerifyWithSat = true;
  Trainer T(W.Reg, W.Cache, Cfg);
  Snapshot S;
  std::vector<TaskFn> Tasks(3, [&W](TxContext &Tx) {
    Tx.add(Location(W.Work), 4);
    Tx.add(Location(W.Work), -4);
  });
  T.trainOn(S, Tasks);
  EXPECT_GT(T.stats().SatCrossChecks, 0u);
  EXPECT_EQ(T.stats().SatDisagreements, 0u);
  EXPECT_GT(T.stats().CachedEntries, 0u);
}

TEST(TrainerTest, InfersWAWForDefineBeforeUseObjects) {
  // PMD's ctx fields: every task writes before reading.
  TrainWorld W;
  ObjectId Ctx = W.Reg.registerObject("ctx.sourceCodeFile");
  TrainerConfig Cfg;
  Cfg.InferWAWRelaxation = true;
  Trainer T(W.Reg, W.Cache, Cfg);
  Snapshot S;
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != 3; ++I)
    Tasks.push_back([&W, Ctx, I](TxContext &Tx) {
      Tx.write(Location(Ctx), Value::of(int64_t(I))); // Define first.
      Tx.read(Location(Ctx));                         // Use later.
      Tx.read(Location(W.Work)); // work: read-only here, no inference.
    });
  T.trainOn(S, Tasks);
  EXPECT_TRUE(W.Reg.info(Ctx).Relax.TolerateWAW);
  EXPECT_FALSE(W.Reg.info(W.Work).Relax.TolerateWAW);
  EXPECT_EQ(T.stats().InferredWAWObjects, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end soundness property: every cache-answered production query
// agrees with the exact online CONFLICT check.
// ---------------------------------------------------------------------------

namespace {

LocOpSeq randomTaskSeq(Rng &R) {
  LocOpSeq Seq;
  int Kind = static_cast<int>(R.below(4));
  switch (Kind) {
  case 0: { // Identity run.
    int Reps = 1 + static_cast<int>(R.below(3));
    for (int I = 0; I != Reps; ++I) {
      int64_t D = R.range(1, 9);
      Seq.push_back(LocOp::add(D));
      Seq.push_back(LocOp::add(-D));
    }
    break;
  }
  case 1: // Plain reduction.
    Seq.push_back(LocOp::add(R.range(-9, 9)));
    break;
  case 2: // Write (possibly equal across tasks).
    Seq.push_back(LocOp::write(Value::of(R.range(0, 2))));
    break;
  default: // Read-modify-write.
    Seq.push_back(LocOp::read());
    Seq.push_back(LocOp::write(Value::of(R.range(0, 2))));
    break;
  }
  return Seq;
}

TaskFn taskFromSeq(Location Loc, LocOpSeq Seq) {
  return [Loc, Seq = std::move(Seq)](TxContext &Tx) {
    for (const LocOp &Op : Seq) {
      switch (Op.Kind) {
      case LocOpKind::Read:
        Tx.read(Loc);
        break;
      case LocOpKind::Write:
        Tx.write(Loc, Op.Operand);
        break;
      case LocOpKind::Add:
        Tx.add(Loc, Op.Operand.asInt());
        break;
      }
    }
  };
}

} // namespace

class CacheSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheSoundness, CacheHitsAgreeWithOnlineCheck) {
  Rng R(GetParam());
  TrainWorld W;
  Trainer T(W.Reg, W.Cache);

  // Train on random payloads.
  for (int Round = 0; Round != 3; ++Round) {
    Snapshot S;
    S = S.set(Location(W.Work), Value::of(R.range(0, 5)));
    std::vector<TaskFn> Tasks;
    for (int I = 0; I != 6; ++I)
      Tasks.push_back(taskFromSeq(Location(W.Work), randomTaskSeq(R)));
    T.trainOn(S, Tasks);
  }

  // Production queries: the cached verdict (when evaluable) must match
  // the exact online check.
  for (int Iter = 0; Iter != 300; ++Iter) {
    LocOpSeq Mine = randomTaskSeq(R);
    LocOpSeq Theirs = randomTaskSeq(R);
    // Populate read results by evaluating against a random entry.
    Value Entry = Value::of(R.range(0, 5));
    {
      Value Cur = Entry;
      for (LocOp &Op : Theirs) {
        if (Op.Kind == LocOpKind::Read)
          Op.ReadResult = Cur;
        Cur = applyLocOp(Cur, Op);
      }
      Cur = Entry; // Mine starts from the same entry snapshot.
      for (LocOp &Op : Mine) {
        if (Op.Kind == LocOpKind::Read)
          Op.ReadResult = Cur;
        Cur = applyLocOp(Cur, Op);
      }
    }

    PairQuery Q = conflict::buildPairQuery("work", Mine, Theirs, true);
    auto Cached = W.Cache->lookup(Q.Key);
    if (!Cached)
      continue; // Miss: nothing to validate.
    Bindings B = Q.Binds;
    B[EntrySym] = Entry;
    auto Verdict = Cached->evaluate(B);
    if (!Verdict)
      continue; // Unevaluable: the detector would fall back.
    bool Online = !conflict::conflictOnline(Entry, Mine, Theirs);
    EXPECT_EQ(*Verdict, Online)
        << "iteration " << Iter << "\n mine   = " << sequenceToString(Mine)
        << "\n theirs = " << sequenceToString(Theirs)
        << "\n entry  = " << Entry.toString()
        << "\n key    = " << Q.Key.toString()
        << "\n cond   = " << Cached->toString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheSoundness,
                         ::testing::Values(23, 29, 31, 37, 41));
