//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the tooling layer: pattern classification (the Table 5
/// analysis), conflict explanations, online-training memoization, and
/// the commit-order serializability oracle on both runtimes.
///
//===----------------------------------------------------------------------===//

#include "janus/conflict/Explain.h"
#include "janus/conflict/SequenceDetector.h"
#include "janus/core/Janus.h"
#include "janus/stm/SimRuntime.h"
#include "janus/stm/ThreadedRuntime.h"
#include "janus/support/Rng.h"
#include "janus/training/PatternReport.h"
#include "janus/training/Trainer.h"
#include "janus/workloads/Workload.h"

#include <gtest/gtest.h>

using namespace janus;
using namespace janus::symbolic;
using namespace janus::training;
using stm::LogEntry;
using stm::Snapshot;
using stm::TaskFn;
using stm::TxContext;
using stm::TxLog;

// ---------------------------------------------------------------------------
// Pattern classification.
// ---------------------------------------------------------------------------

TEST(PatternClassifierTest, Identity) {
  EXPECT_TRUE(exhibitsIdentity({LocOp::add(5), LocOp::add(-5)}));
  EXPECT_TRUE(exhibitsIdentity({LocOp::read(Value::of(2)),
                                LocOp::write(Value::of(3)),
                                LocOp::read(Value::of(3)),
                                LocOp::write(Value::of(2))}));
  EXPECT_FALSE(exhibitsIdentity({LocOp::add(5)}));
  EXPECT_FALSE(exhibitsIdentity({LocOp::write(Value::of(1))}));
  // Write-then-erase restores the empty state.
  EXPECT_TRUE(exhibitsIdentity(
      {LocOp::write(Value::of(9)), LocOp::write(Value::absent())}));
}

TEST(PatternClassifierTest, Reduction) {
  EXPECT_TRUE(exhibitsReduction({LocOp::add(1)}));
  EXPECT_TRUE(exhibitsReduction({LocOp::add(1), LocOp::add(7)}));
  EXPECT_FALSE(exhibitsReduction({LocOp::add(1), LocOp::read()}));
  EXPECT_FALSE(exhibitsReduction({}));
}

TEST(PatternClassifierTest, SharedAsLocal) {
  EXPECT_TRUE(exhibitsSharedAsLocal(
      {LocOp::write(Value::of(1)), LocOp::read(Value::of(1))}));
  EXPECT_FALSE(exhibitsSharedAsLocal({LocOp::write(Value::of(1))}));
  EXPECT_FALSE(exhibitsSharedAsLocal(
      {LocOp::read(Value::of(0)), LocOp::write(Value::of(1))}));
}

TEST(PatternClassifierTest, ReadOnly) {
  EXPECT_TRUE(isReadOnly({LocOp::read()}));
  EXPECT_FALSE(isReadOnly({LocOp::read(), LocOp::add(1)}));
  EXPECT_FALSE(isReadOnly({}));
}

TEST(PatternReportTest, ClassifiesAMixedRun) {
  ObjectRegistry Reg;
  ObjectId Counter = Reg.registerObject("counter");
  ObjectId MaxVal = Reg.registerObject("maxVal");

  std::map<Location, std::vector<TaskSubsequence>> Subs;
  // Counter: three tasks, pure adds (reduction).
  for (uint32_t T = 1; T <= 3; ++T)
    Subs[Location(Counter)].push_back(
        TaskSubsequence{T, {LocOp::add(static_cast<int64_t>(T))}});
  // MaxVal: two readers, one writer (spurious reads).
  Subs[Location(MaxVal)].push_back(
      TaskSubsequence{1, {LocOp::read(Value::of(1))}});
  Subs[Location(MaxVal)].push_back(
      TaskSubsequence{2, {LocOp::read(Value::of(1))}});
  Subs[Location(MaxVal)].push_back(
      TaskSubsequence{3, {LocOp::write(Value::of(5))}});

  PatternReport Report = PatternReport::analyze(Subs, Reg);
  const ObjectPatternStats *C = Report.objectByName("counter");
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->Hits.at(Pattern::Reduction), 3u);
  const ObjectPatternStats *M = Report.objectByName("maxVal");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Hits.at(Pattern::SpuriousReads), 2u);
  // Prevalent list is non-empty and ranked.
  EXPECT_FALSE(C->prevalent().empty());
  EXPECT_EQ(C->prevalent().front(), Pattern::Reduction);
  EXPECT_NE(Report.summary().find("Reduction"), std::string::npos);
}

TEST(PatternReportTest, SingleTaskLocationsIgnored) {
  ObjectRegistry Reg;
  ObjectId Priv = Reg.registerObject("private");
  std::map<Location, std::vector<TaskSubsequence>> Subs;
  Subs[Location(Priv)].push_back(
      TaskSubsequence{1, {LocOp::write(Value::of(1))}});
  PatternReport Report = PatternReport::analyze(Subs, Reg);
  EXPECT_EQ(Report.objectByName("private"), nullptr);
  EXPECT_EQ(Report.summary(), "(none)");
}

TEST(PatternReportTest, MergeAccumulates) {
  ObjectRegistry Reg;
  ObjectId C = Reg.registerObject("c");
  std::map<Location, std::vector<TaskSubsequence>> Subs;
  for (uint32_t T = 1; T <= 2; ++T)
    Subs[Location(C)].push_back(TaskSubsequence{T, {LocOp::add(1)}});
  PatternReport A = PatternReport::analyze(Subs, Reg);
  PatternReport B = PatternReport::analyze(Subs, Reg);
  A.mergeWith(B);
  EXPECT_EQ(A.objectByName("c")->Subsequences, 4u);
  EXPECT_EQ(A.objectByName("c")->Hits.at(Pattern::Reduction), 4u);
}

TEST(PatternReportTest, WorkloadPatternsDetected) {
  // The Table 5 check: each workload's detected patterns include its
  // expected ones.
  using namespace janus::workloads;
  for (auto &W : allWorkloads()) {
    core::JanusConfig Cfg;
    core::Janus J(Cfg);
    W->setup(J);
    for (const PayloadSpec &P : W->trainingPayloads(3))
      J.train(W->makeTasks(P));
    std::string Detected = J.patternReport().summary();
    // Split the expected list and check containment.
    std::string Expected = W->patterns();
    size_t Pos = 0;
    while (Pos < Expected.size()) {
      size_t Comma = Expected.find(", ", Pos);
      std::string Name = Expected.substr(
          Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
      EXPECT_NE(Detected.find(Name), std::string::npos)
          << W->name() << ": expected pattern '" << Name
          << "' not in detected '" << Detected << "'";
      if (Comma == std::string::npos)
        break;
      Pos = Comma + 2;
    }
  }
}

// ---------------------------------------------------------------------------
// Conflict explanations.
// ---------------------------------------------------------------------------

namespace {

struct ExplainWorld {
  ObjectRegistry Reg;
  ObjectId Work;
  ExplainWorld() { Work = Reg.registerObject("work"); }
};

stm::TxLogRef logOf(std::initializer_list<LogEntry> Entries) {
  return std::make_shared<const TxLog>(Entries);
}

} // namespace

TEST(ExplainTest, NoConflictOnEmptyHistory) {
  ExplainWorld W;
  TxLog Mine{{Location(W.Work), LocOp::write(Value::of(1))}};
  auto E = conflict::explainConflict(Snapshot(), Mine, {}, W.Reg);
  EXPECT_FALSE(E.Conflicting);
  EXPECT_EQ(E.toString(), "no conflict");
}

TEST(ExplainTest, ExplainsCommuteViolation) {
  ExplainWorld W;
  TxLog Mine{{Location(W.Work), LocOp::write(Value::of(5))}};
  auto Theirs = logOf({{Location(W.Work), LocOp::write(Value::of(7))}});
  auto E = conflict::explainConflict(Snapshot(), Mine, {Theirs}, W.Reg);
  ASSERT_TRUE(E.Conflicting);
  EXPECT_EQ(E.LocationName, "work");
  EXPECT_NE(E.Reason.find("COMMUTE violated"), std::string::npos);
  EXPECT_NE(E.Reason.find("5"), std::string::npos);
  EXPECT_NE(E.Reason.find("7"), std::string::npos);
  EXPECT_NE(E.toString().find("mine: W(5)"), std::string::npos);
}

TEST(ExplainTest, ExplainsSameReadViolation) {
  ExplainWorld W;
  stm::Snapshot S;
  S = S.set(Location(W.Work), Value::of(3));
  TxLog Mine{{Location(W.Work), LocOp::read(Value::of(3))}};
  auto Theirs = logOf({{Location(W.Work), LocOp::write(Value::of(9))}});
  auto E = conflict::explainConflict(S, Mine, {Theirs}, W.Reg);
  ASSERT_TRUE(E.Conflicting);
  EXPECT_NE(E.Reason.find("SAMEREAD violated"), std::string::npos);
  EXPECT_NE(E.Reason.find("3"), std::string::npos);
  EXPECT_NE(E.Reason.find("9"), std::string::npos);
}

TEST(ExplainTest, RespectsRelaxations) {
  ObjectRegistry Reg;
  ObjectId Relaxed = Reg.registerObject(
      "scratch", "", RelaxationSpec{/*TolerateRAW=*/false,
                                    /*TolerateWAW=*/true});
  TxLog Mine{{Location(Relaxed), LocOp::write(Value::of(1))}};
  auto Theirs = logOf({{Location(Relaxed), LocOp::write(Value::of(2))}});
  auto E = conflict::explainConflict(Snapshot(), Mine, {Theirs}, Reg);
  EXPECT_FALSE(E.Conflicting);
}

TEST(ExplainTest, AgreesWithOnlineDetector) {
  // Property: explainConflict's verdict equals conflictOnline's on
  // random pairs.
  ExplainWorld W;
  Rng R(77);
  for (int Iter = 0; Iter != 200; ++Iter) {
    auto RandomLog = [&]() {
      TxLog Log;
      for (int I = 0, E = 1 + static_cast<int>(R.below(3)); I != E; ++I) {
        switch (R.below(3)) {
        case 0:
          Log.push_back({Location(W.Work), LocOp::read()});
          break;
        case 1:
          Log.push_back({Location(W.Work), LocOp::add(R.range(-2, 2))});
          break;
        default:
          Log.push_back(
              {Location(W.Work), LocOp::write(Value::of(R.range(0, 3)))});
          break;
        }
      }
      return Log;
    };
    Snapshot S;
    S = S.set(Location(W.Work), Value::of(R.range(0, 3)));
    TxLog Mine = RandomLog();
    auto Theirs = std::make_shared<const TxLog>(RandomLog());
    auto E = conflict::explainConflict(S, Mine, {Theirs}, W.Reg);
    bool Online = conflict::conflictOnline(
        stm::snapshotValue(S, Location(W.Work)),
        conflict::decompose(Mine)[Location(W.Work)],
        conflict::decomposeAll({Theirs})[Location(W.Work)]);
    EXPECT_EQ(E.Conflicting, Online) << "iteration " << Iter;
  }
}

// ---------------------------------------------------------------------------
// Online-training memoization.
// ---------------------------------------------------------------------------

TEST(MemoizationTest, MissesBecomeHits) {
  ObjectRegistry Reg;
  ObjectId Work = Reg.registerObject("work");
  auto Cache = std::make_shared<conflict::CommutativityCache>();
  conflict::SequenceDetectorConfig Cfg;
  Cfg.OnlineFallback = true;
  Cfg.MemoizeOnline = true;
  conflict::SequenceDetector D(Cache, Cfg);

  TxLog Mine{{Location(Work), LocOp::add(4)}};
  auto Theirs = logOf({{Location(Work), LocOp::add(9)}});
  EXPECT_EQ(Cache->size(), 0u);
  EXPECT_FALSE(D.detectConflicts(Snapshot(), Mine, {Theirs}, Reg));
  EXPECT_EQ(D.stats().CacheMisses.load(), 1u);
  EXPECT_EQ(Cache->size(), 1u); // Memoized.
  // The same query now hits (fresh operand values, same signatures).
  TxLog Mine2{{Location(Work), LocOp::add(-2)}};
  auto Theirs2 = logOf({{Location(Work), LocOp::add(5)}});
  EXPECT_FALSE(D.detectConflicts(Snapshot(), Mine2, {Theirs2}, Reg));
  EXPECT_EQ(D.stats().CacheMisses.load(), 1u);
  EXPECT_EQ(D.stats().CacheHits.load(), 1u);
}

TEST(MemoizationTest, MemoizedVerdictsRemainSound) {
  // Equal-writes memoization: the cached condition must distinguish
  // equal from unequal values on later queries.
  ObjectRegistry Reg;
  ObjectId Pix = Reg.registerObject("pixel");
  auto Cache = std::make_shared<conflict::CommutativityCache>();
  conflict::SequenceDetectorConfig Cfg;
  Cfg.OnlineFallback = true;
  Cfg.MemoizeOnline = true;
  conflict::SequenceDetector D(Cache, Cfg);

  auto Check = [&](const char *A, const char *B) {
    TxLog Mine{{Location(Pix), LocOp::write(Value::of(A))}};
    auto Theirs = logOf({{Location(Pix), LocOp::write(Value::of(B))}});
    return D.detectConflicts(Snapshot(), Mine, {Theirs}, Reg);
  };
  EXPECT_FALSE(Check("red", "red")); // Miss, memoized.
  EXPECT_EQ(Cache->size(), 1u);
  EXPECT_TRUE(Check("red", "blue"));  // Hit: condition false.
  EXPECT_FALSE(Check("blue", "blue")); // Hit: condition true.
  EXPECT_EQ(D.stats().CacheMisses.load(), 1u);
}

// ---------------------------------------------------------------------------
// Commit-order serializability oracle.
// ---------------------------------------------------------------------------

namespace {

/// Re-executes \p Tasks sequentially in \p Order from \p Initial.
Snapshot replayInOrder(const ObjectRegistry &Reg, Snapshot Initial,
                       const std::vector<TaskFn> &Tasks,
                       const std::vector<uint32_t> &Order) {
  Snapshot State = std::move(Initial);
  for (uint32_t Tid : Order) {
    TxContext Tx(State, Tid, Reg);
    Tasks[Tid - 1](Tx);
    for (const LogEntry &E : Tx.log())
      State = stm::applyToSnapshot(State, E.Loc, E.Op);
  }
  return State;
}

std::vector<TaskFn> randomTasks(ObjectId A, ObjectId B, Rng &R, int Count) {
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != Count; ++I) {
    int Kind = static_cast<int>(R.below(3));
    int64_t V = R.range(0, 5);
    Tasks.push_back([A, B, Kind, V](TxContext &Tx) {
      switch (Kind) {
      case 0: {
        Value Cur = Tx.read(Location(A));
        Tx.write(Location(A),
                 Value::of((Cur.isInt() ? Cur.asInt() : 0) + V));
        break;
      }
      case 1:
        Tx.add(Location(B), V);
        break;
      default:
        Tx.read(Location(B));
        Tx.write(Location(A), Value::of(V));
        break;
      }
    });
  }
  return Tasks;
}

} // namespace

class SerializabilityOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializabilityOracle, SimFinalStateEqualsCommitOrderReplay) {
  Rng R(GetParam());
  for (bool Ordered : {false, true}) {
    ObjectRegistry Reg;
    ObjectId A = Reg.registerObject("a"), B = Reg.registerObject("b");
    std::vector<TaskFn> Tasks = randomTasks(A, B, R, 25);

    stm::WriteSetDetector D;
    stm::SimConfig Cfg;
    Cfg.NumCores = 4;
    Cfg.Ordered = Ordered;
    stm::SimRuntime Runtime(Reg, D, Cfg);
    Runtime.run(Tasks);

    std::vector<uint32_t> Order = Runtime.commitOrder();
    ASSERT_EQ(Order.size(), Tasks.size());
    if (Ordered) {
      for (size_t I = 0; I != Order.size(); ++I)
        ASSERT_EQ(Order[I], I + 1) << "ordered run must commit in order";
    }

    Snapshot Replayed = replayInOrder(Reg, Snapshot(), Tasks, Order);
    EXPECT_TRUE(Runtime.sharedState() == Replayed)
        << "ordered=" << Ordered;
  }
}

TEST_P(SerializabilityOracle, ThreadedFinalStateEqualsCommitOrderReplay) {
  Rng R(GetParam() + 1000);
  ObjectRegistry Reg;
  ObjectId A = Reg.registerObject("a"), B = Reg.registerObject("b");
  std::vector<TaskFn> Tasks = randomTasks(A, B, R, 30);

  stm::WriteSetDetector D;
  stm::ThreadedRuntime Runtime(Reg, D, stm::ThreadedConfig{4, false, false});
  Runtime.run(Tasks);

  std::vector<uint32_t> Order = Runtime.commitOrder();
  ASSERT_EQ(Order.size(), Tasks.size());
  Snapshot Replayed = replayInOrder(Reg, Snapshot(), Tasks, Order);
  EXPECT_TRUE(Runtime.sharedState() == Replayed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializabilityOracle,
                         ::testing::Values(51, 52, 53, 54));
