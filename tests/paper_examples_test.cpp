//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's own worked examples, verified executable:
///   - §5.3's counterexample showing COMMUTE alone is unsound and the
///     SAMEREAD tests are necessary (Lemma 5.2);
///   - §5.1's mined-sequence example ({work+=2; work-=2; ...});
///   - §3 step 1's BitSet relational encoding;
///   - the Figure 2/3/4/5 pattern kernels as miniature detector checks.
/// Plus deeper property tests: Tseitin equisatisfiability against a
/// brute-force oracle and for-all-states relational commutativity
/// against exhaustive small-universe checking.
///
//===----------------------------------------------------------------------===//

#include "janus/conflict/SequenceDetector.h"
#include "janus/relational/Encoding.h"
#include "janus/sat/PropFormula.h"
#include "janus/support/Rng.h"
#include "janus/training/Trainer.h"

#include <gtest/gtest.h>

using namespace janus;
using namespace janus::symbolic;
using stm::LogEntry;
using stm::Snapshot;
using stm::TxLog;

// ---------------------------------------------------------------------------
// §5.3: COMMUTE alone does not suffice.
// ---------------------------------------------------------------------------

TEST(PaperExamplesTest, Section53CounterexampleNeedsSameRead) {
  // x = 0, y = 0;
  //   T1: { b = x==0; if (b) y = 1; x = 1; }
  //   T2: { x = 1; }
  // "The subsequences corresponding to both x and y commute... Yet the
  // two transactions do not commute. This is because the (control)
  // dependence between x and y is (incorrectly) ignored." The SAMEREAD
  // test catches it: T1's read of x observes 0 without T2 and 1 after.
  ObjectRegistry Reg;
  ObjectId X = Reg.registerObject("x");
  ObjectId Y = Reg.registerObject("y");

  Snapshot S;
  S = S.set(Location(X), Value::of(int64_t(0)));
  S = S.set(Location(Y), Value::of(int64_t(0)));

  // T1 executed against the initial snapshot: b = (x==0) = true, so it
  // writes y = 1 and x = 1.
  TxLog T1{{Location(X), LocOp::read(Value::of(int64_t(0)))},
           {Location(Y), LocOp::write(Value::of(int64_t(1)))},
           {Location(X), LocOp::write(Value::of(int64_t(1)))}};
  auto T2 = std::make_shared<const TxLog>(
      TxLog{{Location(X), LocOp::write(Value::of(int64_t(1)))}});

  // Location-wise COMMUTE holds on x: { R, W(1) } vs { W(1) } both
  // orders end with x = 1 (and y is private to T1).
  {
    ChecksSpec CommuteOnly;
    CommuteOnly.SameReadA = CommuteOnly.SameReadB = false;
    EXPECT_FALSE(conflict::conflictOnline(
        Value::of(int64_t(0)),
        {LocOp::read(Value::of(int64_t(0))),
         LocOp::write(Value::of(int64_t(1)))},
        {LocOp::write(Value::of(int64_t(1)))}, CommuteOnly))
        << "COMMUTE alone admits the interleaving";
  }

  // The full Figure 8 judgment (with SAMEREAD) must reject it.
  auto Cache = std::make_shared<conflict::CommutativityCache>();
  conflict::SequenceDetectorConfig Cfg;
  Cfg.OnlineFallback = true;
  conflict::SequenceDetector D(Cache, Cfg);
  EXPECT_TRUE(D.detectConflicts(S, T1, {T2}, Reg))
      << "SAMEREAD must flag T1's stale read of x";
}

// ---------------------------------------------------------------------------
// §5.1: the mined work sequences.
// ---------------------------------------------------------------------------

TEST(PaperExamplesTest, Section51WorkSequencesCommute) {
  // "two such sequences may be { work+=2; work-=2; work+=1; work-=1; }
  // and { work+=3; work-=3; }" — with symbolization { work+=x;
  // work-=x; } and Kleene abstraction ({...})+ they commute for every
  // payload.
  LocOpSeq A{LocOp::add(2), LocOp::add(-2), LocOp::add(1), LocOp::add(-1)};
  LocOpSeq B{LocOp::add(3), LocOp::add(-3)};
  conflict::PairQuery Q = conflict::buildPairQuery("work", A, B, true);
  // Both sides collapse to one canonical signature.
  EXPECT_EQ(Q.Key.MineSig, Q.Key.TheirsSig);
  auto Cond = commutativityCondition(Q.MineAbs.expandOnce(),
                                     Q.TheirsAbs.expandOnce());
  ASSERT_TRUE(Cond.has_value());
  EXPECT_TRUE(Cond->isValid());
  EXPECT_FALSE(conflict::conflictOnline(Value::of(int64_t(0)), A, B));
}

// ---------------------------------------------------------------------------
// §3 step 1: the BitSet relational specification.
// ---------------------------------------------------------------------------

TEST(PaperExamplesTest, Section3BitSetRelationalEncoding) {
  using namespace janus::relational;
  // "The BitSet class can be encoded as a 2-ary relation mapping
  // integral values to boolean values ... setting the bit at index n
  // to value x translates into removing the (unique) tuple whose first
  // component is n and then inserting (n, x)."
  SchemaRef S = std::make_shared<Schema>(
      std::vector<std::string>{"idx", "val"}, std::vector<uint32_t>{0});
  Relation Bits(S);
  // set(3, true); set(3, false): the FD keeps one tuple per index.
  Bits = Bits.insert(Tuple({Value::of(int64_t(3)), Value::of(true)}));
  Bits = Bits.insert(Tuple({Value::of(int64_t(3)), Value::of(false)}));
  EXPECT_EQ(Bits.size(), 1u);
  // get(3) as a select query.
  Relation Got = Bits.select(TupleFormula::mkEq(0, Value::of(int64_t(3))));
  ASSERT_EQ(Got.size(), 1u);
  EXPECT_EQ(Got.tuples().begin()->at(1), Value::of(false));
}

// ---------------------------------------------------------------------------
// The four motivating kernels (Figures 2–5) as detector micro-checks.
// ---------------------------------------------------------------------------

namespace {

bool kernelsConflict(const LocOpSeq &Mine, const LocOpSeq &Theirs,
                     const Value &Entry, RelaxationSpec Relax = {}) {
  return conflict::conflictOnline(Entry, Mine, Theirs,
                                  conflict::checksFor(Relax));
}

} // namespace

TEST(PaperExamplesTest, Figure2IdentityKernel) {
  // Balanced monitor pushes/pops restore the size: no conflict.
  LocOpSeq PushPop{
      LocOp::read(Value::of(int64_t(0))), LocOp::write(Value::of(int64_t(1))),
      LocOp::read(Value::of(int64_t(1))), LocOp::write(Value::of(int64_t(0)))};
  EXPECT_FALSE(
      kernelsConflict(PushPop, PushPop, Value::of(int64_t(0))));
}

TEST(PaperExamplesTest, Figure3SpuriousReadsKernel) {
  // maxColor: a reader and a writer conflict under the strict checks
  // but not once RAW conflicts are declared tolerable.
  LocOpSeq Reader{LocOp::read(Value::of(int64_t(4)))};
  LocOpSeq Writer{LocOp::write(Value::of(int64_t(6)))};
  EXPECT_TRUE(kernelsConflict(Reader, Writer, Value::of(int64_t(4))));
  EXPECT_FALSE(kernelsConflict(
      Reader, Writer, Value::of(int64_t(4)),
      RelaxationSpec{/*TolerateRAW=*/true, /*TolerateWAW=*/false}));
}

TEST(PaperExamplesTest, Figure4SharedAsLocalKernel) {
  // ctx fields: define-before-use writers conflict on WAW under strict
  // checks but not with the tolerate-WAW spec.
  LocOpSeq Task1{LocOp::write(Value::of("File1.java")),
                 LocOp::read(Value::of("File1.java"))};
  LocOpSeq Task2{LocOp::write(Value::of("File2.java")),
                 LocOp::read(Value::of("File2.java"))};
  EXPECT_TRUE(kernelsConflict(Task1, Task2, Value::absent()));
  EXPECT_FALSE(kernelsConflict(
      Task1, Task2, Value::absent(),
      RelaxationSpec{/*TolerateRAW=*/false, /*TolerateWAW=*/true}));
}

TEST(PaperExamplesTest, Figure5EqualWritesKernel) {
  // Two iterations painting one pixel conflict exactly when the colors
  // differ.
  LocOpSeq Black{LocOp::write(Value::of("black"))};
  LocOpSeq AlsoBlack{LocOp::write(Value::of("black"))};
  LocOpSeq White{LocOp::write(Value::of("white"))};
  EXPECT_FALSE(kernelsConflict(Black, AlsoBlack, Value::absent()));
  EXPECT_TRUE(kernelsConflict(Black, White, Value::absent()));
}

// ---------------------------------------------------------------------------
// Tseitin equisatisfiability property.
// ---------------------------------------------------------------------------

namespace {

sat::Formula randomProp(sat::FormulaArena &A, Rng &R, int Depth,
                        int NumAtoms) {
  if (Depth == 0 || R.chance(1, 3))
    return A.mkAtom(static_cast<uint32_t>(R.below(NumAtoms)));
  switch (R.below(4)) {
  case 0:
    return A.mkNot(randomProp(A, R, Depth - 1, NumAtoms));
  case 1:
    return A.mkAnd(randomProp(A, R, Depth - 1, NumAtoms),
                   randomProp(A, R, Depth - 1, NumAtoms));
  case 2:
    return A.mkOr(randomProp(A, R, Depth - 1, NumAtoms),
                  randomProp(A, R, Depth - 1, NumAtoms));
  default:
    return A.mkIff(randomProp(A, R, Depth - 1, NumAtoms),
                   randomProp(A, R, Depth - 1, NumAtoms));
  }
}

} // namespace

class TseitinProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TseitinProperty, EncodingIsEquisatisfiable) {
  Rng R(GetParam());
  const int NumAtoms = 5;
  for (int Iter = 0; Iter != 60; ++Iter) {
    sat::FormulaArena A;
    sat::Formula F = randomProp(A, R, 4, NumAtoms);

    // Brute-force satisfiability of the formula itself.
    bool BruteSat = false;
    for (uint32_t Mask = 0; Mask != (1u << NumAtoms) && !BruteSat; ++Mask) {
      std::vector<bool> Vals;
      for (int I = 0; I != NumAtoms; ++I)
        Vals.push_back((Mask >> I) & 1);
      BruteSat = A.evaluate(F, Vals);
    }

    sat::Solver S;
    sat::Tseitin T(A, S);
    T.assertFormula(F);
    EXPECT_EQ(S.solve() == sat::SolveResult::Sat, BruteSat)
        << "iteration " << Iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TseitinProperty,
                         ::testing::Values(111, 222, 333));

// ---------------------------------------------------------------------------
// For-all-states relational commutativity vs exhaustive checking.
// ---------------------------------------------------------------------------

class ForAllStatesProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ForAllStatesProperty, MatchesExhaustiveSmallUniverse) {
  using namespace janus::relational;
  Rng R(GetParam());
  SchemaRef S = std::make_shared<Schema>(
      std::vector<std::string>{"idx", "val"}, std::vector<uint32_t>{0});

  auto RandomTuple = [&R]() {
    return Tuple({Value::of(static_cast<int64_t>(R.below(2))),
                  Value::of(R.chance(1, 2))});
  };
  auto RandomTransformer = [&]() {
    Transformer T;
    for (int I = 0, E = 1 + static_cast<int>(R.below(2)); I != E; ++I) {
      if (R.chance(1, 2))
        T.append(RelOp::insert(RandomTuple()));
      else
        T.append(RelOp::remove(RandomTuple()));
    }
    return T;
  };

  for (int Iter = 0; Iter != 25; ++Iter) {
    Transformer A = RandomTransformer(), B = RandomTransformer();

    // Exhaustive ground truth: enumerate every relation over the
    // universe idx ∈ {0,1} × val ∈ {false,true} respecting the FD
    // (per idx: absent, false, or true — 9 states).
    bool AllCommute = true;
    for (int S0 = 0; S0 != 3 && AllCommute; ++S0) {
      for (int S1 = 0; S1 != 3 && AllCommute; ++S1) {
        Relation Init(S);
        auto AddCell = [&Init](int64_t Idx, int Code) {
          if (Code)
            Init = Init.insert(
                Tuple({Value::of(Idx), Value::of(Code == 2)}));
        };
        AddCell(0, S0);
        AddCell(1, S1);
        Relation AB = B.apply(A.apply(Init).FinalState).FinalState;
        Relation BA = A.apply(B.apply(Init).FinalState).FinalState;
        AllCommute = (AB == BA);
      }
    }

    sat::Equivalence Verdict = transformersCommuteForAllStates(S, A, B);
    ASSERT_NE(Verdict, sat::Equivalence::Unknown);
    // Soundness: Equivalent ⇒ commutes on every state. (The converse
    // can fail: the uninterpreted-content encoding quantifies over
    // tuples beyond the FD-respecting universe, so it may be strictly
    // conservative.)
    if (Verdict == sat::Equivalence::Equivalent) {
      EXPECT_TRUE(AllCommute) << "iteration " << Iter;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForAllStatesProperty,
                         ::testing::Values(11, 13, 17));
