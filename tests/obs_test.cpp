//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for janus::obs: counters, latency histograms, the trace
/// buffer and its Chrome trace-event export, the sampling decision, and
/// the abort-attribution report (including its determinism guarantee
/// over the simulator).
///
//===----------------------------------------------------------------------===//

#include "janus/adt/TxMap.h"
#include "janus/core/Janus.h"
#include "janus/obs/Attribution.h"
#include "janus/obs/Obs.h"

#include <gtest/gtest.h>

using namespace janus;
using namespace janus::obs;

// ---------------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAccumulatesAndResets) {
  Counter C;
  EXPECT_EQ(C.load(), 0u);
  ++C;
  C.add(41);
  EXPECT_EQ(C.load(), 42u);
  C.reset();
  EXPECT_EQ(C.load(), 0u);
}

TEST(MetricsTest, HistogramBucketsByPowerOfTwoMicros) {
  LatencyHistogram H;
  H.record(0.5);    // [0, 1us) -> bucket 0.
  H.record(1.0);    // [1, 2us) -> bucket 1.
  H.record(3.0);    // [2, 4us) -> bucket 2.
  H.record(1000.0); // [512, 1024us) -> bucket 10.
  LatencyHistogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 4u);
  EXPECT_EQ(S.Counts[0], 1u);
  EXPECT_EQ(S.Counts[1], 1u);
  EXPECT_EQ(S.Counts[2], 1u);
  EXPECT_EQ(S.Counts[10], 1u);
  EXPECT_NEAR(S.SumMicros, 1004.5, 0.01);
  EXPECT_NEAR(S.meanMicros(), 1004.5 / 4.0, 0.01);
}

TEST(MetricsTest, HistogramQuantileIsConservativeBucketBound) {
  LatencyHistogram H;
  for (int I = 0; I != 99; ++I)
    H.record(1.5); // Bucket 1: [1, 2us).
  H.record(700.0); // Bucket 10: [512, 1024us).
  LatencyHistogram::Snapshot S = H.snapshot();
  // The estimate is the inclusive upper bucket bound.
  EXPECT_EQ(S.quantileUs(0.5), 2.0);
  EXPECT_EQ(S.quantileUs(0.99), 2.0);
  EXPECT_EQ(S.quantileUs(1.0), 1024.0);
  // Out-of-range and degenerate inputs stay finite.
  EXPECT_EQ(LatencyHistogram::bucketBoundUs(LatencyHistogram::NumBuckets + 5),
            LatencyHistogram::bucketBoundUs(LatencyHistogram::NumBuckets - 1));
  EXPECT_EQ(LatencyHistogram::Snapshot().quantileUs(0.5), 0.0);
}

TEST(MetricsTest, HistogramHugeAndNegativeSamplesStayBounded) {
  LatencyHistogram H;
  H.record(1e12); // Way past the last bound: lands in the last bucket.
  H.record(-5.0); // Clock skew: clamps to bucket 0, contributes 0 sum.
  LatencyHistogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 2u);
  EXPECT_EQ(S.Counts[LatencyHistogram::NumBuckets - 1], 1u);
  EXPECT_EQ(S.Counts[0], 1u);
}

TEST(MetricsTest, RegistryReturnsStableRefsAndSortedValues) {
  MetricsRegistry R;
  Counter &A = R.counter("b.second");
  Counter &B = R.counter("a.first");
  EXPECT_EQ(&R.counter("b.second"), &A); // Same name, same instrument.
  ++A;
  ++A;
  ++B;
  R.histogram("lat").record(4.0);
  auto Counters = R.counterValues();
  ASSERT_EQ(Counters.size(), 2u);
  EXPECT_EQ(Counters[0].first, "a.first"); // Sorted by name.
  EXPECT_EQ(Counters[0].second, 1u);
  EXPECT_EQ(Counters[1].second, 2u);
  auto Hists = R.histogramValues();
  ASSERT_EQ(Hists.size(), 1u);
  EXPECT_EQ(Hists[0].second.Count, 1u);
  R.reset();
  EXPECT_EQ(R.counterValues()[0].second, 0u);
  EXPECT_EQ(R.histogramValues()[0].second.Count, 0u);
}

// ---------------------------------------------------------------------------
// Trace buffer and Observer.
// ---------------------------------------------------------------------------

TEST(TraceBufferTest, LaneCapDropsAndCounts) {
  TraceBuffer B(/*NumLanes=*/2, /*MaxEventsPerLane=*/3);
  SpanRecord R;
  R.Name = "body";
  for (int I = 0; I != 5; ++I)
    B.append(0, R);
  B.append(1, R);
  B.append(99, R); // Out-of-range lane clamps to the last lane.
  EXPECT_EQ(B.size(), 5u);
  EXPECT_EQ(B.dropped(), 2u);
  EXPECT_EQ(B.merged().size(), 5u);
  B.clear();
  EXPECT_EQ(B.size(), 0u);
  EXPECT_EQ(B.dropped(), 0u);
}

TEST(ObserverTest, SamplingKeepsTaskOnesCongruenceClass) {
  ObsConfig Off;
  EXPECT_FALSE(Observer(Off, 2).sampled(1)); // Disabled: nothing sampled.

  ObsConfig Every;
  Every.Enabled = true;
  Observer OEvery(Every, 2);
  for (uint32_t Tid = 1; Tid != 8; ++Tid)
    EXPECT_TRUE(OEvery.sampled(Tid));

  ObsConfig Quarter;
  Quarter.Enabled = true;
  Quarter.SampleEvery = 4;
  Observer OQuarter(Quarter, 2);
  // Task 1's class: 1, 5, 9, ... — deterministic across runs.
  EXPECT_TRUE(OQuarter.sampled(1));
  EXPECT_TRUE(OQuarter.sampled(5));
  EXPECT_TRUE(OQuarter.sampled(9));
  EXPECT_FALSE(OQuarter.sampled(2));
  EXPECT_FALSE(OQuarter.sampled(3));
  EXPECT_FALSE(OQuarter.sampled(4));
}

TEST(ObserverTest, SpansFeedCounterTraceAndExport) {
  ObsConfig Cfg;
  Cfg.Enabled = true;
  Observer O(Cfg, /*NumLanes=*/3);
  EXPECT_EQ(O.auxLane(), 2u);
  O.span(0, "commit", /*Tid=*/7, /*Attempt=*/2, 10.0, 5.0, "clock", 3.0);
  O.instant(1, "abort", 8, 1, 12.0, "conflict");
  O.span(O.auxLane(), "sat", 0, 0, 20.0, 2.5, "conflicts", 4.0);
  EXPECT_EQ(O.trace().size(), 3u);

  std::string Json = O.chromeTraceJson();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(Json.find("\"commit\""), std::string::npos);
  EXPECT_NE(Json.find("\"abort\""), std::string::npos);
  EXPECT_NE(Json.find("\"conflict\""), std::string::npos);
  // Lanes are named via metadata events.
  EXPECT_NE(Json.find("\"thread_name\""), std::string::npos);

  std::string Metrics = O.metricsJson();
  EXPECT_NE(Metrics.find("\"obs.spans_recorded\":3"), std::string::npos)
      << Metrics;

  O.commitLatency().record(5.0);
  EXPECT_NE(O.metricsTable().find("commit_latency_us"), std::string::npos);

  O.clear();
  EXPECT_EQ(O.trace().size(), 0u);
  EXPECT_NE(O.metricsJson().find("\"obs.spans_recorded\":0"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine integration: spans recorded by a real (simulated) run.
// ---------------------------------------------------------------------------

namespace {

core::JanusConfig contendedConfig() {
  core::JanusConfig Cfg;
  Cfg.Engine = core::EngineKind::Simulated;
  Cfg.Threads = 4;
  // The write-set detector flags every overlapping same-key access, so
  // the read-modify-write tasks below are guaranteed to abort and give
  // the attribution report something to rank.
  Cfg.Detector = core::DetectorKind::WriteSet;
  Cfg.RecordTrace = true;
  return Cfg;
}

/// Eight tasks doing a read-modify-write of the same map key (plus one
/// private key each): a deterministic contention hotspot.
std::vector<stm::TaskFn> contendedTasks(const adt::TxMap &M) {
  std::vector<stm::TaskFn> Tasks;
  for (int I = 0; I != 8; ++I)
    Tasks.push_back([&M, I](stm::TxContext &Tx) {
      std::optional<Value> Cur = M.get(Tx, "hot");
      int64_t Base = Cur ? Cur->asInt() : 0;
      M.put(Tx, "hot", Value::of(Base + 1));
      M.put(Tx, "private" + std::to_string(I), Value::of(int64_t(I)));
    });
  return Tasks;
}

/// One full contended run; \returns the rendered attribution table and
/// JSON through the out-params.
void runContended(bool EnableObs, std::string &Table, std::string &Json,
                  uint64_t &TotalAborts, size_t &Spans) {
  core::JanusConfig Cfg = contendedConfig();
  Cfg.Obs.Enabled = EnableObs;
  core::Janus J(Cfg);
  adt::TxMap M = adt::TxMap::create(J.registry(), "m");
  J.setInitial(M.locationAt("hot"), Value::of(int64_t(0)));
  J.runInOrder(contendedTasks(M));
  AbortAttribution A = attributeAborts(J.lastTrace(), J.registry());
  Table = A.toTable();
  Json = A.toJson();
  TotalAborts = A.TotalAborts;
  Spans = J.observer() ? J.observer()->trace().size() : 0;
}

} // namespace

TEST(AttributionTest, RanksTheContendedKeyFirst) {
  std::string Table, Json;
  uint64_t Aborts = 0;
  size_t Spans = 0;
  runContended(/*EnableObs=*/true, Table, Json, Aborts, Spans);
  ASSERT_GT(Aborts, 0u);
  // The hot key is the top-ranked conflict source, ahead of the
  // uncontended private keys (which never abort anything).
  size_t HotPos = Table.find("m[\"hot\"]");
  ASSERT_NE(HotPos, std::string::npos) << Table;
  EXPECT_EQ(Table.find("m[\"private"), std::string::npos) << Table;
  EXPECT_NE(Json.find("\"total_aborts\""), std::string::npos);
  EXPECT_NE(Json.find("m[\\\"hot\\\"]"), std::string::npos) << Json;
  // The observed run also produced spans (virtual-time tracing).
  EXPECT_GT(Spans, 0u);
}

TEST(AttributionTest, IdenticalRunsYieldIdenticalReports) {
  // The simulator is deterministic and attribution ranks by
  // (count desc, key asc): two identical runs must render the exact
  // same table and JSON, byte for byte — with and without the observer
  // attached (observation must not perturb the schedule).
  std::string T1, J1, T2, J2, T3, J3;
  uint64_t A1 = 0, A2 = 0, A3 = 0;
  size_t S = 0;
  runContended(true, T1, J1, A1, S);
  runContended(true, T2, J2, A2, S);
  runContended(false, T3, J3, A3, S);
  EXPECT_EQ(T1, T2);
  EXPECT_EQ(J1, J2);
  EXPECT_EQ(A1, A2);
  EXPECT_EQ(T1, T3);
  EXPECT_EQ(J1, J3);
}

TEST(AttributionTest, EmptyTraceAttributesNothing) {
  stm::AuditTrace Empty;
  ObjectRegistry Reg;
  AbortAttribution A = attributeAborts(Empty, Reg);
  EXPECT_EQ(A.TotalAborts, 0u);
  EXPECT_TRUE(A.Rows.empty());
  EXPECT_NE(A.toTable().find("0 aborted attempts"), std::string::npos);
}
