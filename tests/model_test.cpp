//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive small-scope validation of Theorem 4.1 via the protocol
/// model checker: the shipped detectors uphold serializability,
/// validity and termination on *every* begin/commit interleaving of
/// small transaction sets; an intentionally unsound detector and an
/// intentionally invalid one are both caught; ordered exploration
/// commits in task order on every schedule.
///
//===----------------------------------------------------------------------===//

#include "janus/conflict/SequenceDetector.h"
#include "janus/model/ProtocolModel.h"
#include "janus/support/Rng.h"

#include <gtest/gtest.h>

using namespace janus;
using namespace janus::model;
using namespace janus::symbolic;
using stm::Snapshot;

namespace {

struct ModelWorld {
  ObjectRegistry Reg;
  ObjectId X, Y;
  ModelWorld() {
    X = Reg.registerObject("x");
    Y = Reg.registerObject("y");
  }
};

/// An intentionally unsound detector: never reports a conflict.
class BlindDetector : public stm::ConflictDetector {
public:
  bool detectConflicts(const Snapshot &, const stm::TxLog &,
                       const std::vector<stm::TxLogRef> &,
                       const ObjectRegistry &) override {
    return false;
  }
  std::string name() const override { return "blind"; }
};

/// An intentionally invalid detector: always reports a conflict.
class ParanoidDetector : public stm::ConflictDetector {
public:
  bool detectConflicts(const Snapshot &, const stm::TxLog &,
                       const std::vector<stm::TxLogRef> &,
                       const ObjectRegistry &) override {
    return true;
  }
  std::string name() const override { return "paranoid"; }
};

ScriptOp read(Location Loc) { return ScriptOp::plain(Loc, LocOp::read()); }
ScriptOp write(Location Loc, int64_t V) {
  return ScriptOp::plain(Loc, LocOp::write(Value::of(V)));
}
ScriptOp add(Location Loc, int64_t D) {
  return ScriptOp::plain(Loc, LocOp::add(D));
}

} // namespace

TEST(ProtocolModelTest, EvaluateScriptFillsReadsAndComputedWrites) {
  ModelWorld W;
  Snapshot S;
  S = S.set(Location(W.X), Value::of(int64_t(5)));
  Script Sc{read(Location(W.X)),
            ScriptOp::computedWrite(Location(W.X), 2, 1), // x := 2·5+1
            read(Location(W.X))};
  stm::TxLog Log = evaluateScript(Sc, S);
  EXPECT_EQ(Log[0].Op.ReadResult, Value::of(int64_t(5)));
  EXPECT_EQ(Log[1].Op.Operand, Value::of(int64_t(11)));
  EXPECT_EQ(Log[2].Op.ReadResult, Value::of(int64_t(11)));
}

TEST(ProtocolModelTest, WriteSetDetectorUpholdsTheorem41) {
  ModelWorld W;
  stm::WriteSetDetector D;
  // Genuinely conflicting increments expressed as read-dependent
  // writes (the lost-update shape), plus a reader of a second cell.
  std::vector<Script> Scripts = {
      {read(Location(W.X)), ScriptOp::computedWrite(Location(W.X), 1, 1)},
      {read(Location(W.X)), ScriptOp::computedWrite(Location(W.X), 1, 1)},
      {read(Location(W.Y)), write(Location(W.X), 9)},
  };
  ModelResult R = exploreProtocol(Scripts, D, W.Reg, Snapshot());
  EXPECT_TRUE(R.allHeld()) << R.FirstViolation;
  EXPECT_GT(R.SchedulesExplored, 10u);
  EXPECT_GT(R.AbortEvents, 0u);
  EXPECT_FALSE(R.Exhausted);
}

TEST(ProtocolModelTest, SequenceDetectorUpholdsTheorem41) {
  ModelWorld W;
  auto Cache = std::make_shared<conflict::CommutativityCache>();
  conflict::SequenceDetectorConfig Cfg;
  Cfg.OnlineFallback = true;
  conflict::SequenceDetector D(Cache, Cfg);
  std::vector<Script> Scripts = {
      {add(Location(W.X), 1), add(Location(W.X), -1)},
      {add(Location(W.X), 5)},
      {read(Location(W.X)), ScriptOp::computedWrite(Location(W.Y), 1, 0)},
  };
  ModelResult R = exploreProtocol(Scripts, D, W.Reg, Snapshot());
  EXPECT_TRUE(R.allHeld()) << R.FirstViolation;
  EXPECT_GT(R.SchedulesExplored, 10u);
}

TEST(ProtocolModelTest, OrderedExplorationCommitsInTaskOrder) {
  ModelWorld W;
  stm::WriteSetDetector D;
  std::vector<Script> Scripts = {
      {write(Location(W.X), 1)},
      {write(Location(W.X), 2)},
      {write(Location(W.X), 3)},
  };
  ModelConfig Cfg;
  Cfg.Ordered = true;
  ModelResult R = exploreProtocol(Scripts, D, W.Reg, Snapshot(), Cfg);
  EXPECT_TRUE(R.allHeld()) << R.FirstViolation;
  EXPECT_GT(R.SchedulesExplored, 0u);
}

TEST(ProtocolModelTest, BlindDetectorViolatesSerializability) {
  // The classic lost update: both transactions read x and write x+1.
  // A blind detector lets both commit from the same snapshot; the
  // final state (1) differs from the commit-order replay (2) — the
  // model's serializability oracle must catch it.
  ModelWorld W;
  BlindDetector D;
  std::vector<Script> Scripts = {
      {read(Location(W.X)), ScriptOp::computedWrite(Location(W.X), 1, 1)},
      {read(Location(W.X)), ScriptOp::computedWrite(Location(W.X), 1, 1)},
  };
  ModelResult R = exploreProtocol(Scripts, D, W.Reg, Snapshot());
  EXPECT_FALSE(R.SerializabilityHeld);
  EXPECT_EQ(R.AbortEvents, 0u);
  EXPECT_NE(R.FirstViolation.find("commit-order replay"),
            std::string::npos);
}

TEST(ProtocolModelTest, ParanoidDetectorViolatesValidityAndTermination) {
  ModelWorld W;
  ParanoidDetector D;
  std::vector<Script> Scripts = {
      {add(Location(W.X), 1)},
      {add(Location(W.X), 2)},
  };
  ModelConfig Cfg;
  Cfg.MaxRetriesPerTask = 3;
  ModelResult R = exploreProtocol(Scripts, D, W.Reg, Snapshot(), Cfg);
  EXPECT_FALSE(R.ValidityHeld);
  EXPECT_FALSE(R.TerminationHeld);
  EXPECT_FALSE(R.FirstViolation.empty());
}

TEST(ProtocolModelTest, SemanticAddsSurviveEvenBlindDetection) {
  // Semantic Add replay composes like a CRDT: even a blind detector
  // cannot lose counter updates (this is *why* TxCounter logs semantic
  // adds rather than read-modify-writes). The danger is confined to
  // read-dependent writes, which the previous test witnesses.
  ModelWorld W;
  BlindDetector D;
  std::vector<Script> Scripts = {
      {add(Location(W.X), 1)},
      {add(Location(W.X), 1)},
  };
  ModelResult R = exploreProtocol(Scripts, D, W.Reg, Snapshot());
  EXPECT_TRUE(R.SerializabilityHeld);
}

TEST(ProtocolModelTest, RandomScriptsUpholdTheoremUnderBothDetectors) {
  Rng R(4242);
  for (int Trial = 0; Trial != 10; ++Trial) {
    ModelWorld W;
    std::vector<Script> Scripts;
    for (int T = 0; T != 3; ++T) {
      Script S;
      for (int O = 0, E = 1 + static_cast<int>(R.below(3)); O != E; ++O) {
        Location Loc = R.chance(1, 2) ? Location(W.X) : Location(W.Y);
        switch (R.below(4)) {
        case 0:
          S.push_back(read(Loc));
          break;
        case 1:
          S.push_back(add(Loc, R.range(-2, 2)));
          break;
        case 2:
          S.push_back(write(Loc, R.range(0, 3)));
          break;
        default:
          S.push_back(
              ScriptOp::computedWrite(Loc, R.range(1, 2), R.range(0, 2)));
          break;
        }
      }
      Scripts.push_back(std::move(S));
    }

    stm::WriteSetDetector WS;
    ModelResult RWs = exploreProtocol(Scripts, WS, W.Reg, Snapshot());
    EXPECT_TRUE(RWs.allHeld())
        << "trial " << Trial << ": " << RWs.FirstViolation;

    auto Cache = std::make_shared<conflict::CommutativityCache>();
    conflict::SequenceDetectorConfig Cfg;
    Cfg.OnlineFallback = true;
    conflict::SequenceDetector SD(Cache, Cfg);
    ModelResult RSeq = exploreProtocol(Scripts, SD, W.Reg, Snapshot());
    EXPECT_TRUE(RSeq.allHeld())
        << "trial " << Trial << ": " << RSeq.FirstViolation;
  }
}
