//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests for the five benchmark workloads: deterministic
/// input generation, end-to-end train-then-run correctness under both
/// detectors and both engines, and the headline qualitative result —
/// sequence-based detection retries far less than write-set detection
/// on every workload (the Figure 10 shape).
///
//===----------------------------------------------------------------------===//

#include "janus/analysis/Auditor.h"
#include "janus/workloads/CodeScan.h"
#include "janus/workloads/FileSync.h"
#include "janus/workloads/GraphColor.h"
#include "janus/workloads/HashChurn.h"
#include "janus/workloads/Render.h"
#include "janus/workloads/Ssca2.h"
#include "janus/workloads/Workload.h"

#include <gtest/gtest.h>

using namespace janus;
using namespace janus::core;
using namespace janus::workloads;

namespace {

/// Standard sequence configuration used by the benchmark harness:
/// trained cache, write-set fallback, automatic WAW inference.
JanusConfig seqConfig(unsigned Threads) {
  JanusConfig Cfg;
  Cfg.Threads = Threads;
  Cfg.Detector = DetectorKind::Sequence;
  Cfg.Sequence.OnlineFallback = true;
  Cfg.Training.InferWAWRelaxation = true;
  Cfg.Training.MaxConcat = 8;
  return Cfg;
}

JanusConfig wsConfig(unsigned Threads) {
  JanusConfig Cfg;
  Cfg.Threads = Threads;
  Cfg.Detector = DetectorKind::WriteSet;
  return Cfg;
}

/// Trains a workload on its training payloads (only meaningful for the
/// sequence detector; harmless otherwise).
void trainWorkload(Workload &W, Janus &J, int Rounds = 3) {
  for (const PayloadSpec &P : W.trainingPayloads(Rounds))
    J.train(W.makeTasks(P));
}

} // namespace

TEST(WorkloadCatalogTest, PaperBenchmarksThenKernels) {
  auto All = allWorkloads();
  ASSERT_EQ(All.size(), 7u);
  EXPECT_EQ(All[0]->name(), "JFileSync");
  EXPECT_EQ(All[1]->name(), "JGraphT-1");
  EXPECT_EQ(All[2]->name(), "JGraphT-2");
  EXPECT_EQ(All[3]->name(), "PMD");
  EXPECT_EQ(All[4]->name(), "Weka");
  EXPECT_EQ(All[5]->name(), "HashChurn");
  EXPECT_EQ(All[6]->name(), "SSCA2");
  EXPECT_NE(workloadByName("PMD"), nullptr);
  EXPECT_NE(workloadByName("HashChurn"), nullptr);
  EXPECT_EQ(workloadByName("nope"), nullptr);
  for (const auto &W : All) {
    EXPECT_FALSE(W->description().empty());
    EXPECT_FALSE(W->patterns().empty());
    EXPECT_FALSE(W->trainingInputDesc().empty());
  }
}

TEST(WorkloadInputsTest, GeneratorsAreDeterministic) {
  PayloadSpec P{7, true};
  auto A = FileSyncWorkload::generatePairs(P);
  auto B = FileSyncWorkload::generatePairs(P);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Id, B[I].Id);
    EXPECT_EQ(A[I].ChildFileCounts, B[I].ChildFileCounts);
  }
  // Distinct seeds give distinct inputs.
  PayloadSpec Q{8, true};
  EXPECT_NE(FileSyncWorkload::generatePairs(Q)[0].Id, A[0].Id);
}

TEST(WorkloadInputsTest, TrainingSmallerThanProduction) {
  PayloadSpec Train{1, false}, Prod{1, true};
  EXPECT_LT(FileSyncWorkload::generatePairs(Train).size(),
            FileSyncWorkload::generatePairs(Prod).size());
  EXPECT_LT(GraphColorWorkload::generateGraph(Train).Neighbors.size(),
            GraphColorWorkload::generateGraph(Prod).Neighbors.size());
  EXPECT_LT(CodeScanWorkload::generateFiles(Train).size(),
            CodeScanWorkload::generateFiles(Prod).size());
  EXPECT_LT(RenderWorkload::generateScene(Train).Nodes.size(),
            RenderWorkload::generateScene(Prod).Nodes.size());
}

TEST(WorkloadInputsTest, RandomGraphIsSimpleAndSymmetric) {
  RandomGraph G = RandomGraph::generate(3, 200, 5);
  for (size_t V = 0; V != G.Neighbors.size(); ++V) {
    for (int64_t Nb : G.Neighbors[V]) {
      EXPECT_NE(static_cast<int64_t>(V), Nb) << "self loop";
      const auto &Back = G.Neighbors[Nb];
      EXPECT_NE(std::find(Back.begin(), Back.end(),
                          static_cast<int64_t>(V)),
                Back.end())
          << "asymmetric edge";
    }
    // No duplicate edges.
    auto Copy = G.Neighbors[V];
    std::sort(Copy.begin(), Copy.end());
    EXPECT_EQ(std::adjacent_find(Copy.begin(), Copy.end()), Copy.end());
  }
}

/// Every workload, sequence detector, simulated engine: train, run a
/// small production payload, verify the final state.
class WorkloadEndToEnd : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadEndToEnd, SequenceDetectorCorrectAndQuiet) {
  auto All = allWorkloads();
  Workload &W = *All[GetParam()];
  Janus J(seqConfig(4));
  W.setup(J);
  trainWorkload(W, J);
  PayloadSpec Prod{100, false}; // Training-sized payload keeps CI fast.
  core::RunOutcome O = W.runOn(J, Prod);
  (void)O;
  EXPECT_TRUE(W.verify(J, Prod)) << W.name();
  // Figure 10's qualitative claim: sequence detection retries rarely.
  double Ratio = J.runStats().retryRatio();
  EXPECT_LT(Ratio, 0.5) << W.name() << " retry ratio " << Ratio;
}

TEST_P(WorkloadEndToEnd, WriteSetDetectorIsCorrectButRetries) {
  auto All = allWorkloads();
  Workload &W = *All[GetParam()];
  Janus J(wsConfig(4));
  W.setup(J);
  PayloadSpec Prod{100, false};
  W.runOn(J, Prod);
  EXPECT_TRUE(W.verify(J, Prod)) << W.name();
}

TEST_P(WorkloadEndToEnd, SequenceRetriesLessThanWriteSet) {
  auto All = allWorkloads();
  PayloadSpec Prod{100, false};

  Janus JW(wsConfig(8));
  Workload &WW = *All[GetParam()];
  WW.setup(JW);
  WW.runOn(JW, Prod);
  uint64_t WsRetries = JW.runStats().Retries.load();

  auto All2 = allWorkloads();
  Workload &WS = *All2[GetParam()];
  Janus JS(seqConfig(8));
  WS.setup(JS);
  trainWorkload(WS, JS);
  WS.runOn(JS, Prod);
  uint64_t SeqRetries = JS.runStats().Retries.load();

  EXPECT_LE(SeqRetries, WsRetries) << WS.name();
  // At 8 cores the write-set detector must be retrying (the workloads
  // all share state); the sequence detector stays well below it.
  EXPECT_GT(WsRetries, 0u) << WS.name();
  EXPECT_LT(static_cast<double>(SeqRetries),
            0.55 * static_cast<double>(WsRetries))
      << WS.name() << " seq=" << SeqRetries << " ws=" << WsRetries;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadEndToEnd,
                         ::testing::Range(0, 7));

TEST(WorkloadThreadedTest, FileSyncOnRealThreads) {
  auto W = workloadByName("JFileSync");
  JanusConfig Cfg = seqConfig(4);
  Cfg.Engine = EngineKind::Threaded;
  Janus J(Cfg);
  W->setup(J);
  trainWorkload(*W, J);
  PayloadSpec Prod{100, false};
  W->runOn(J, Prod);
  EXPECT_TRUE(W->verify(J, Prod));
}

TEST(WorkloadThreadedTest, GraphColorOnRealThreads) {
  auto W = workloadByName("JGraphT-1");
  JanusConfig Cfg = wsConfig(4);
  Cfg.Engine = EngineKind::Threaded;
  Janus J(Cfg);
  W->setup(J);
  PayloadSpec Prod{100, false};
  W->runOn(J, Prod);
  EXPECT_TRUE(W->verify(J, Prod));
}

TEST(WorkloadDeterminismTest, SimulatedRunsAreReproducible) {
  auto RunOnce = [](uint64_t &Retries, uint64_t &Commits) {
    auto W = workloadByName("PMD");
    Janus J(seqConfig(8));
    W->setup(J);
    trainWorkload(*W, J);
    PayloadSpec Prod{100, false};
    W->runOn(J, Prod);
    Retries = J.runStats().Retries.load();
    Commits = J.runStats().Commits.load();
  };
  uint64_t R1, C1, R2, C2;
  RunOnce(R1, C1);
  RunOnce(R2, C2);
  EXPECT_EQ(R1, R2);
  EXPECT_EQ(C1, C2);
}

TEST(WorkloadEdgeTest, FileSyncCancellationSkipsChildren) {
  // With progress cancelled before the loop, each iteration only does
  // its outer push/pop and final fireUpdate — the identity still holds
  // and the update count drops to one per pair.
  FileSyncWorkload W;
  Janus J(seqConfig(4));
  W.setup(J);
  // Flip the cancellation flag after setup.
  ObjectRegistry &Reg = J.registry();
  for (uint32_t Id = 0; Id != Reg.size(); ++Id)
    if (Reg.info(ObjectId{Id}).Name == "progress.cancelled")
      J.setInitial(Location(ObjectId{Id}), Value::of(int64_t(1)));

  PayloadSpec P{5, false};
  W.runOn(J, P);
  // Updates: exactly one fireUpdate per pair (children skipped).
  int64_t Pairs =
      static_cast<int64_t>(FileSyncWorkload::generatePairs(P).size());
  bool FoundUpdates = false;
  for (uint32_t Id = 0; Id != Reg.size(); ++Id)
    if (Reg.info(ObjectId{Id}).Name == "progress.updates") {
      EXPECT_EQ(J.valueAt(Location(ObjectId{Id})), Value::of(Pairs));
      FoundUpdates = true;
    }
  EXPECT_TRUE(FoundUpdates);
}

TEST(WorkloadEdgeTest, RepeatedProductionRunsStayCorrect) {
  // The PMD counters accumulate across runs; verify() accounts for one
  // payload, so check the accumulated invariant manually over 3 runs.
  auto W = workloadByName("PMD");
  Janus J(seqConfig(8));
  W->setup(J);
  for (const PayloadSpec &P : W->trainingPayloads(3))
    J.train(W->makeTasks(P));
  PayloadSpec P{9, false};
  int64_t ExpectedPerRun = 0;
  for (const SourceFile &F : CodeScanWorkload::generateFiles(P))
    ExpectedPerRun += static_cast<int64_t>(F.RuleHits.size());
  for (int Run = 1; Run <= 3; ++Run) {
    W->runOn(J, P);
    ObjectRegistry &Reg = J.registry();
    for (uint32_t Id = 0; Id != Reg.size(); ++Id) {
      if (Reg.info(ObjectId{Id}).Name == "report.violations") {
        EXPECT_EQ(J.valueAt(Location(ObjectId{Id})),
                  Value::of(ExpectedPerRun * Run))
            << "run " << Run;
      }
    }
  }
}

TEST(WorkloadEdgeTest, AllWorkloadsSurviveSingleThread) {
  // NumCores = 1: no concurrency, no conflicts, everything must verify.
  for (auto &W : allWorkloads()) {
    Janus J(seqConfig(1));
    W->setup(J);
    PayloadSpec P{3, false};
    W->runOn(J, P);
    EXPECT_TRUE(W->verify(J, P)) << W->name();
    EXPECT_EQ(J.runStats().Retries.load(), 0u) << W->name();
  }
}

TEST(KernelWorkloadTest, GeneratorsAreDeterministic) {
  PayloadSpec P{11, true};
  auto A = HashChurnWorkload::generateScripts(P);
  auto B = HashChurnWorkload::generateScripts(P);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].OwnCycles, B[I].OwnCycles);
    EXPECT_EQ(A[I].HotBumps, B[I].HotBumps);
    EXPECT_EQ(A[I].StableGets, B[I].StableGets);
  }
  auto E1 = Ssca2Workload::generateEdges(P);
  auto E2 = Ssca2Workload::generateEdges(P);
  ASSERT_EQ(E1.size(), E2.size());
  for (size_t I = 0; I != E1.size(); ++I) {
    EXPECT_EQ(E1[I].U, E2[I].U);
    EXPECT_EQ(E1[I].V, E2[I].V);
    EXPECT_EQ(E1[I].Weight, E2[I].Weight);
  }
  // Training inputs stay smaller than production inputs.
  PayloadSpec Train{11, false};
  EXPECT_LT(HashChurnWorkload::generateScripts(Train).size(), A.size());
  EXPECT_LT(Ssca2Workload::generateEdges(Train).size(), E1.size());
}

/// Both kernels, both engines: the recorded run passes the full
/// hindsight audit with the spec tier answering the detection queries.
TEST(KernelWorkloadTest, KernelsAuditCleanOnBothEngines) {
  for (const char *Name : {"HashChurn", "SSCA2"}) {
    for (EngineKind Engine :
         {EngineKind::Simulated, EngineKind::Threaded}) {
      auto W = workloadByName(Name);
      JanusConfig Cfg = seqConfig(4);
      Cfg.Engine = Engine;
      Cfg.Sequence.Specs = conflict::SpecMode::On;
      Cfg.RecordTrace = true;
      Janus J(Cfg);
      W->setup(J);
      trainWorkload(*W, J);
      PayloadSpec P{100, false};
      std::vector<stm::TaskFn> Tasks = W->makeTasks(P);
      J.runOutOfOrder(Tasks);
      EXPECT_TRUE(W->verify(J, P)) << Name;
      analysis::AuditReport Report =
          analysis::audit(J.lastTrace(), Tasks, J.registry());
      EXPECT_TRUE(Report.clean()) << Name << ": " << Report.summary();
    }
  }
}

/// `--specs only` (spec tables + write-set for abstains, learned tiers
/// bypassed) must produce the same verified final state as
/// `--specs off` (the paper's original pipeline) on the kernels.
TEST(KernelWorkloadTest, SpecOnlyMatchesSpecOffFinalState) {
  for (const char *Name : {"HashChurn", "SSCA2"}) {
    PayloadSpec P{42, false};
    auto runWith = [&](conflict::SpecMode Mode, uint64_t &SpecHits) {
      auto W = workloadByName(Name);
      JanusConfig Cfg = seqConfig(4);
      Cfg.Sequence.Specs = Mode;
      Janus J(Cfg);
      W->setup(J);
      trainWorkload(*W, J);
      W->runOn(J, P);
      SpecHits = J.detectorStats().SpecHits.load();
      EXPECT_TRUE(W->verify(J, P)) << Name;
      return J.sharedState();
    };
    uint64_t OnlyHits = 0, OffHits = 0;
    stm::Snapshot OnlyState = runWith(conflict::SpecMode::Only, OnlyHits);
    stm::Snapshot OffState = runWith(conflict::SpecMode::Off, OffHits);
    EXPECT_EQ(OffHits, 0u) << Name;
    OffState.forEach([&](const Location &Loc, const Value &Val) {
      EXPECT_EQ(stm::snapshotValue(OnlyState, Loc), Val)
          << Name << " diverges at " << Loc.toString();
    });
  }
}

TEST(WorkloadEdgeTest, SeedsChangeSchedulesNotInvariants) {
  // Different payload seeds: the invariants must hold for each.
  auto W = workloadByName("Weka");
  for (uint64_t Seed : {1u, 7u, 31u}) {
    auto Fresh = workloadByName("Weka");
    Janus J(seqConfig(8));
    Fresh->setup(J);
    PayloadSpec P{Seed, false};
    Fresh->runOn(J, P);
    EXPECT_TRUE(Fresh->verify(J, P)) << "seed " << Seed;
  }
  (void)W;
}
