//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for the fully persistent hash map used for
/// O(1) shared-state snapshots (paper §4.1 "Versioning").
///
//===----------------------------------------------------------------------===//

#include "janus/persist/PersistentMap.h"
#include "janus/support/Rng.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

using namespace janus;
using janus::persist::PersistentMap;

TEST(PersistentMapTest, EmptyMap) {
  PersistentMap<int, int> M;
  EXPECT_EQ(M.size(), 0u);
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(M.find(1), nullptr);
  EXPECT_FALSE(M.contains(1));
}

TEST(PersistentMapTest, SetAndFind) {
  PersistentMap<int, std::string> M;
  auto M1 = M.set(1, "one");
  auto M2 = M1.set(2, "two");
  EXPECT_EQ(M.size(), 0u);
  EXPECT_EQ(M1.size(), 1u);
  EXPECT_EQ(M2.size(), 2u);
  ASSERT_NE(M2.find(1), nullptr);
  EXPECT_EQ(*M2.find(1), "one");
  EXPECT_EQ(*M2.find(2), "two");
  EXPECT_EQ(M1.find(2), nullptr);
}

TEST(PersistentMapTest, OverwriteKeepsSize) {
  PersistentMap<int, int> M;
  auto M1 = M.set(5, 10);
  auto M2 = M1.set(5, 20);
  EXPECT_EQ(M2.size(), 1u);
  EXPECT_EQ(*M2.find(5), 20);
  EXPECT_EQ(*M1.find(5), 10); // Old version untouched.
}

TEST(PersistentMapTest, EraseIsPersistent) {
  PersistentMap<int, int> M;
  auto M1 = M.set(1, 1).set(2, 2).set(3, 3);
  auto M2 = M1.erase(2);
  EXPECT_EQ(M1.size(), 3u);
  EXPECT_EQ(M2.size(), 2u);
  EXPECT_NE(M1.find(2), nullptr);
  EXPECT_EQ(M2.find(2), nullptr);
  EXPECT_NE(M2.find(1), nullptr);
  EXPECT_NE(M2.find(3), nullptr);
}

TEST(PersistentMapTest, EraseAbsentIsNoop) {
  PersistentMap<int, int> M;
  auto M1 = M.set(1, 1);
  auto M2 = M1.erase(42);
  EXPECT_EQ(M2.size(), 1u);
  EXPECT_TRUE(M1 == M2);
}

TEST(PersistentMapTest, SnapshotIsO1AndIndependent) {
  PersistentMap<int, int> M;
  for (int I = 0; I != 100; ++I)
    M = M.set(I, I * I);
  PersistentMap<int, int> Snapshot = M; // O(1) copy.
  for (int I = 0; I != 100; ++I)
    M = M.set(I, -I);
  for (int I = 0; I != 100; ++I) {
    EXPECT_EQ(*Snapshot.find(I), I * I);
    EXPECT_EQ(*M.find(I), -I);
  }
}

TEST(PersistentMapTest, EqualityIsStructural) {
  PersistentMap<int, int> A, B;
  A = A.set(1, 1).set(2, 2);
  B = B.set(2, 2).set(1, 1); // Different insertion order.
  EXPECT_TRUE(A == B);
  B = B.set(3, 3);
  EXPECT_TRUE(A != B);
  B = B.erase(3);
  EXPECT_TRUE(A == B);
  B = B.set(2, 99);
  EXPECT_TRUE(A != B);
}

TEST(PersistentMapTest, ForEachVisitsAllEntriesOnce) {
  PersistentMap<int, int> M;
  for (int I = 0; I != 50; ++I)
    M = M.set(I, I + 1);
  std::map<int, int> Seen;
  M.forEach([&Seen](int K, int V) {
    EXPECT_EQ(Seen.count(K), 0u);
    Seen[K] = V;
  });
  EXPECT_EQ(Seen.size(), 50u);
  for (int I = 0; I != 50; ++I)
    EXPECT_EQ(Seen[I], I + 1);
}

namespace {

/// A deliberately colliding hasher: only 4 distinct hash values.
struct BadHash {
  size_t operator()(int K) const { return static_cast<size_t>(K % 4); }
};

} // namespace

TEST(PersistentMapTest, HashCollisionsAreHandled) {
  PersistentMap<int, int, BadHash> M;
  for (int I = 0; I != 64; ++I)
    M = M.set(I, I * 7);
  EXPECT_EQ(M.size(), 64u);
  for (int I = 0; I != 64; ++I) {
    ASSERT_NE(M.find(I), nullptr) << "key " << I;
    EXPECT_EQ(*M.find(I), I * 7);
  }
  for (int I = 0; I != 64; I += 2)
    M = M.erase(I);
  EXPECT_EQ(M.size(), 32u);
  for (int I = 0; I != 64; ++I)
    EXPECT_EQ(M.contains(I), I % 2 == 1);
}

TEST(PersistentMapTest, StringKeys) {
  PersistentMap<std::string, int> M;
  M = M.set("alpha", 1).set("beta", 2).set("gamma", 3);
  EXPECT_EQ(*M.find("beta"), 2);
  M = M.erase("beta");
  EXPECT_EQ(M.find("beta"), nullptr);
  EXPECT_EQ(M.size(), 2u);
}

/// Property: a random op stream applied to both the persistent map and
/// std::map stays in lock-step, and every intermediate version remains
/// valid afterwards (full persistence).
class PersistentMapRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PersistentMapRandom, AgreesWithStdMapModel) {
  Rng R(GetParam());
  PersistentMap<int, int> M;
  std::map<int, int> Model;
  std::vector<PersistentMap<int, int>> Versions;
  std::vector<std::map<int, int>> ModelVersions;

  for (int Step = 0; Step != 600; ++Step) {
    int Key = static_cast<int>(R.below(80));
    if (R.chance(2, 3)) {
      int Val = static_cast<int>(R.below(1000));
      M = M.set(Key, Val);
      Model[Key] = Val;
    } else {
      M = M.erase(Key);
      Model.erase(Key);
    }
    if (Step % 97 == 0) {
      Versions.push_back(M);
      ModelVersions.push_back(Model);
    }
    ASSERT_EQ(M.size(), Model.size()) << "step " << Step;
    const int *Found = M.find(Key);
    auto ModelIt = Model.find(Key);
    ASSERT_EQ(Found != nullptr, ModelIt != Model.end());
    if (Found) {
      ASSERT_EQ(*Found, ModelIt->second);
    }
  }

  // Every key agrees at the end.
  for (int Key = 0; Key != 80; ++Key) {
    const int *Found = M.find(Key);
    auto It = Model.find(Key);
    ASSERT_EQ(Found != nullptr, It != Model.end()) << "key " << Key;
    if (Found) {
      ASSERT_EQ(*Found, It->second);
    }
  }

  // Saved versions are still exactly what they were (persistence).
  for (size_t I = 0; I != Versions.size(); ++I) {
    ASSERT_EQ(Versions[I].size(), ModelVersions[I].size());
    for (const auto &[Key, Val] : ModelVersions[I]) {
      const int *Found = Versions[I].find(Key);
      ASSERT_NE(Found, nullptr);
      ASSERT_EQ(*Found, Val);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistentMapRandom,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(PersistentMapTest, EraseCollapsesBranchesBackToLeaves) {
  // Exercise the branch-collapse path: grow a deep trie, then erase
  // back down to single entries and verify lookups throughout.
  PersistentMap<int, int> M;
  const int N = 2000;
  for (int I = 0; I != N; ++I)
    M = M.set(I, I);
  for (int I = 0; I != N - 1; ++I) {
    M = M.erase(I);
    ASSERT_EQ(M.size(), static_cast<size_t>(N - 1 - I));
  }
  ASSERT_NE(M.find(N - 1), nullptr);
  EXPECT_EQ(*M.find(N - 1), N - 1);
}

TEST(PersistentMapTest, ManyVersionsShareStructure) {
  // 1000 versions of a 1000-entry map: without structural sharing this
  // would allocate ~10^6 nodes; with path copying it stays cheap. We
  // can't observe allocation directly, but all versions must remain
  // exactly correct.
  PersistentMap<int, int> Base;
  for (int I = 0; I != 1000; ++I)
    Base = Base.set(I, 0);
  std::vector<PersistentMap<int, int>> Versions;
  PersistentMap<int, int> Cur = Base;
  for (int V = 1; V <= 1000; ++V) {
    Cur = Cur.set(V % 1000, V);
    if (V % 100 == 0)
      Versions.push_back(Cur);
  }
  for (size_t VI = 0; VI != Versions.size(); ++VI) {
    int V = static_cast<int>((VI + 1) * 100);
    // In version V, key (V % 1000) holds V.
    ASSERT_EQ(*Versions[VI].find(V % 1000), V);
  }
}
