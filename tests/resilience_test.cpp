//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for janus::resilience and its integration into both engines:
/// fault-plan parsing, the contention-manager escalation ladder
/// (backoff → serial fallback → failure), exception-safe transactions,
/// retry-storm bounding, deterministic fault injection, adaptive
/// detector degradation, and audit-cleanliness of degraded runs.
///
//===----------------------------------------------------------------------===//

#include "janus/analysis/Auditor.h"
#include "janus/conflict/SequenceDetector.h"
#include "janus/resilience/ContentionManager.h"
#include "janus/resilience/FaultPlan.h"
#include "janus/stm/Detector.h"
#include "janus/stm/SimRuntime.h"
#include "janus/stm/ThreadedRuntime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>

using namespace janus;
using namespace janus::resilience;
using namespace janus::stm;
using symbolic::LocOp;

namespace {

/// Common fixture state: a registry with a couple of scalar objects.
struct World {
  ObjectRegistry Reg;
  ObjectId Work, Flag;
  World() {
    Work = Reg.registerObject("work");
    Flag = Reg.registerObject("flag");
  }
};

/// N read-modify-write increments of \p L — the classic lost-update
/// workload: every pair of tasks conflicts under write-set detection.
std::vector<TaskFn> incrementTasks(Location L, int N) {
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != N; ++I)
    Tasks.push_back([L](TxContext &Tx) {
      Value V = Tx.read(L);
      int64_t Cur = V.isAbsent() ? 0 : V.asInt();
      Tx.write(L, Value::of(Cur + 1));
    });
  return Tasks;
}

FaultPlan mustParse(const std::string &Spec) {
  std::string Err;
  std::optional<FaultPlan> P = FaultPlan::parse(Spec, &Err);
  EXPECT_TRUE(P.has_value()) << Spec << ": " << Err;
  return P ? *P : FaultPlan();
}

} // namespace

// ---------------------------------------------------------------------------
// FaultPlan parsing.
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, ParsesEveryClauseKind) {
  FaultPlan P = mustParse("abort@3.1;throw@2.1;delay@1.2=50;satbudget=4");
  EXPECT_FALSE(P.empty());
  EXPECT_EQ(P.actions().size(), 4u);
  EXPECT_TRUE(P.forceAbort(3, 1));
  EXPECT_FALSE(P.forceAbort(3, 2));
  EXPECT_FALSE(P.forceAbort(1, 1));
  EXPECT_TRUE(P.throwTask(2, 1));
  EXPECT_FALSE(P.throwTask(2, 2));
  EXPECT_EQ(P.commitDelay(1, 2), 50u);
  EXPECT_EQ(P.commitDelay(1, 1), 0u);
  ASSERT_TRUE(P.satConflictBudget().has_value());
  EXPECT_EQ(*P.satConflictBudget(), 4u);
}

TEST(FaultPlanTest, WildcardsMatchEveryCoordinate) {
  FaultPlan P = mustParse("abort@*.1;throw@2.*;delay@*.*=7");
  // Task wildcard: first attempt of every task aborts.
  EXPECT_TRUE(P.forceAbort(1, 1));
  EXPECT_TRUE(P.forceAbort(999, 1));
  EXPECT_FALSE(P.forceAbort(1, 2));
  // Attempt wildcard: every attempt of task 2 throws.
  EXPECT_TRUE(P.throwTask(2, 1));
  EXPECT_TRUE(P.throwTask(2, 17));
  EXPECT_FALSE(P.throwTask(3, 1));
  // Double wildcard: every commit is delayed.
  EXPECT_EQ(P.commitDelay(5, 9), 7u);
}

TEST(FaultPlanTest, RoundTripsThroughToString) {
  FaultPlan P = mustParse("abort@*.1;throw@2.1;delay@*.2=50;satbudget=4");
  FaultPlan Q = mustParse(P.toString());
  ASSERT_EQ(Q.actions().size(), P.actions().size());
  EXPECT_TRUE(Q.forceAbort(7, 1));
  EXPECT_TRUE(Q.throwTask(2, 1));
  EXPECT_EQ(Q.commitDelay(3, 2), 50u);
  ASSERT_TRUE(Q.satConflictBudget().has_value());
  EXPECT_EQ(*Q.satConflictBudget(), 4u);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  std::string Err;
  EXPECT_FALSE(FaultPlan::parse("bogus@1.1", &Err).has_value());
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(FaultPlan::parse("abort@x.1").has_value());
  EXPECT_FALSE(FaultPlan::parse("abort@1", &Err).has_value());
  EXPECT_FALSE(FaultPlan::parse("delay@1.1", &Err).has_value());
  EXPECT_FALSE(FaultPlan::parse("satbudget", &Err).has_value());
}

TEST(FaultPlanTest, FromEnvReadsJanusFaults) {
  ::setenv("JANUS_FAULTS", "abort@1.1;satbudget=7", 1);
  FaultPlan P = FaultPlan::fromEnv();
  EXPECT_TRUE(P.forceAbort(1, 1));
  ASSERT_TRUE(P.satConflictBudget().has_value());
  EXPECT_EQ(*P.satConflictBudget(), 7u);
  ::unsetenv("JANUS_FAULTS");
  EXPECT_TRUE(FaultPlan::fromEnv().empty());
}

// ---------------------------------------------------------------------------
// ContentionManager policy.
// ---------------------------------------------------------------------------

TEST(ContentionManagerTest, BackoffGrowsExponentiallyAndCaps) {
  ResilienceConfig C;
  C.SpeculativeRetryBudget = 0; // Never escalate: isolate backoff.
  C.BackoffBaseMicros = 2;
  C.BackoffCapMicros = 512;
  ContentionManager CM(C, 1);
  uint64_t Prev = 0;
  for (int I = 0; I != 20; ++I) {
    ContentionManager::Decision D = CM.onAbort(1, 0);
    ASSERT_EQ(D.Act, ContentionManager::Action::Retry);
    // Jitter lives in [step/2, step] so successive steps never shrink
    // below half the previous full step, and never exceed the cap.
    EXPECT_LE(D.BackoffMicros, 512u);
    EXPECT_GE(D.BackoffMicros, Prev / 2);
    Prev = D.BackoffMicros;
  }
  // Past attempt 9 the step is pinned at the cap.
  EXPECT_GE(Prev, 256u);
}

TEST(ContentionManagerTest, BackoffIsDeterministic) {
  ResilienceConfig C;
  C.SpeculativeRetryBudget = 0;
  ContentionManager A(C, 4), B(C, 4);
  for (int I = 0; I != 10; ++I) {
    EXPECT_EQ(A.onAbort(2, 1).BackoffMicros, B.onAbort(2, 1).BackoffMicros);
    EXPECT_EQ(A.onAbort(3, 0).BackoffMicros, B.onAbort(3, 0).BackoffMicros);
  }
}

TEST(ContentionManagerTest, EscalatesToSerialAfterRetryBudget) {
  ResilienceConfig C;
  C.SpeculativeRetryBudget = 3;
  ContentionManager CM(C, 2);
  EXPECT_EQ(CM.onAbort(1, 0).Act, ContentionManager::Action::Retry);
  EXPECT_EQ(CM.onAbort(1, 0).Act, ContentionManager::Action::Retry);
  EXPECT_EQ(CM.onAbort(1, 0).Act, ContentionManager::Action::Serial);
  // Other tasks age independently.
  EXPECT_EQ(CM.onAbort(2, 0).Act, ContentionManager::Action::Retry);
  EXPECT_EQ(CM.attempts(1), 3u);
}

TEST(ContentionManagerTest, ZeroBudgetNeverEscalates) {
  ResilienceConfig C;
  C.SpeculativeRetryBudget = 0; // The paper's retry-forever behaviour.
  ContentionManager CM(C, 1);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(CM.onAbort(1, 0).Act, ContentionManager::Action::Retry);
}

TEST(ContentionManagerTest, ExceptionBudgetThenFail) {
  ResilienceConfig C;
  C.ExceptionRetryBudget = 2;
  ContentionManager CM(C, 1);
  EXPECT_EQ(CM.onException(1, 0).Act, ContentionManager::Action::Retry);
  EXPECT_EQ(CM.onException(1, 0).Act, ContentionManager::Action::Retry);
  EXPECT_EQ(CM.onException(1, 0).Act, ContentionManager::Action::Fail);

  ResilienceConfig Zero;
  Zero.ExceptionRetryBudget = 0; // Fail on the first throw.
  ContentionManager CM0(Zero, 1);
  EXPECT_EQ(CM0.onException(1, 0).Act, ContentionManager::Action::Fail);
}

// ---------------------------------------------------------------------------
// Exception-safe transactions (threaded engine).
// ---------------------------------------------------------------------------

TEST(ThreadedResilienceTest, ThrowingTaskCommitsOnSecondAttempt) {
  World W;
  WriteSetDetector D;
  ThreadedConfig C;
  C.NumThreads = 1;
  ThreadedRuntime R(W.Reg, D, C);
  std::atomic<int> Calls{0};
  R.run({[&](TxContext &Tx) {
    if (Calls.fetch_add(1) == 0)
      throw std::runtime_error("transient glitch");
    Tx.write(Location(W.Work), Value::of(42));
  }});
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Work)), Value::of(42));
  EXPECT_EQ(R.stats().Commits.load(), 1u);
  EXPECT_EQ(R.stats().TaskExceptions.load(), 1u);
  // Thrown attempts are not conflict retries.
  EXPECT_EQ(R.stats().Retries.load(), 0u);
  EXPECT_TRUE(R.failures().empty());
}

TEST(ThreadedResilienceTest, PermanentThrowSurfacesStructuredFailure) {
  World W;
  WriteSetDetector D;
  ThreadedConfig C;
  C.NumThreads = 2;
  C.Ordered = true;
  C.Resilience.ExceptionRetryBudget = 1;
  ThreadedRuntime R(W.Reg, D, C);
  R.run({[&W](TxContext &Tx) { Tx.add(Location(W.Work), 1); },
         [](TxContext &) -> void { throw std::runtime_error("boom"); },
         [&W](TxContext &Tx) { Tx.add(Location(W.Work), 3); }});
  // The failed task's slot committed an empty placeholder, so its
  // ordered successor still ran; its effects are absent.
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Work)), Value::of(4));
  EXPECT_EQ(R.stats().Commits.load(), 3u);
  EXPECT_EQ(R.stats().TaskFailures.load(), 1u);
  ASSERT_EQ(R.failures().size(), 1u);
  const TaskFailure &F = R.failures()[0];
  EXPECT_EQ(F.Tid, 2u);
  EXPECT_EQ(F.Attempts, 2u); // Budget 1 ⇒ original + one retry.
  EXPECT_NE(F.Reason.find("boom"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Retry storms and serial escalation.
// ---------------------------------------------------------------------------

TEST(ThreadedResilienceTest, RetryStormIsBoundedByEscalation) {
  // 64 read-modify-write tasks on one cell across 8 threads: maximal
  // contention under write-set detection. With a retry budget every
  // task either commits speculatively or escalates to the serial
  // fallback — total aborts are bounded and nothing livelocks.
  World W;
  WriteSetDetector D;
  ThreadedConfig C;
  C.NumThreads = 8;
  C.Resilience.SpeculativeRetryBudget = 4;
  C.Resilience.BackoffBaseMicros = 1;
  C.Resilience.BackoffCapMicros = 8;
  ThreadedRuntime R(W.Reg, D, C);
  const int N = 64;
  R.run(incrementTasks(Location(W.Work), N));
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Work)), Value::of(N));
  EXPECT_EQ(R.stats().Commits.load(), static_cast<uint64_t>(N));
  // Each task aborts at most SpeculativeRetryBudget times before the
  // serial rung guarantees its commit.
  EXPECT_LE(R.stats().Retries.load(), static_cast<uint64_t>(N) * 4);
  EXPECT_TRUE(R.failures().empty());
  EXPECT_EQ(R.stats().TaskFailures.load(), 0u);
}

TEST(ThreadedResilienceTest, ForcedStarvationEscalatesToSerialFallback) {
  // Force-abort every attempt of task 2: it can never commit
  // speculatively, so the budget must route it through the serial
  // fallback — which ignores forced aborts (it is irrevocable).
  World W;
  WriteSetDetector D;
  ThreadedConfig C;
  C.NumThreads = 2;
  C.Ordered = true;
  C.Resilience.SpeculativeRetryBudget = 2;
  C.Faults = mustParse("abort@2.*");
  ThreadedRuntime R(W.Reg, D, C);
  const int N = 4;
  std::vector<TaskFn> Tasks;
  for (int I = 1; I <= N; ++I)
    Tasks.push_back([&W, I](TxContext &Tx) {
      Tx.write(Location(W.Flag), Value::of(I));
      Tx.add(Location(W.Work), I);
    });
  R.run(Tasks);
  // Ordered semantics survive the fallback (Theorem 4.1).
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Flag)), Value::of(N));
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Work)),
            Value::of(N * (N + 1) / 2));
  EXPECT_EQ(R.stats().Commits.load(), static_cast<uint64_t>(N));
  EXPECT_EQ(R.stats().SerialFallbacks.load(), 1u);
  EXPECT_EQ(R.stats().FaultsInjected.load(), 2u); // Two forced aborts.
  EXPECT_TRUE(R.failures().empty());
}

TEST(SimResilienceTest, ForcedStarvationEscalatesToSerialFallback) {
  World W;
  WriteSetDetector D;
  SimConfig C;
  C.NumCores = 4;
  C.Ordered = true;
  C.Resilience.SpeculativeRetryBudget = 2;
  C.Faults = mustParse("abort@1.*");
  SimRuntime R(W.Reg, D, C);
  SimOutcome O = R.run(incrementTasks(Location(W.Work), 6));
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Work)), Value::of(6));
  EXPECT_EQ(R.stats().Commits.load(), 6u);
  EXPECT_GE(R.stats().SerialFallbacks.load(), 1u);
  EXPECT_TRUE(O.Failures.empty());
}

// ---------------------------------------------------------------------------
// Deterministic fault injection.
// ---------------------------------------------------------------------------

TEST(SimResilienceTest, InjectedRunsAreBitReproducible) {
  // The simulator under a fault plan must be exactly as deterministic
  // as without one: identical schedules, statistics, failures, virtual
  // times and final states across runs.
  const std::string Spec = "abort@*.1;throw@2.1;delay@*.2=3";
  auto RunOnce = [&](uint64_t &Retries, uint64_t &Exceptions,
                     uint64_t &Serial, uint64_t &Injected, uint64_t &Commits,
                     double &Par, Value &Final) {
    World W;
    WriteSetDetector D;
    SimConfig C;
    C.NumCores = 4;
    C.Ordered = true;
    C.Faults = mustParse(Spec);
    SimRuntime R(W.Reg, D, C);
    SimOutcome O = R.run(incrementTasks(Location(W.Work), 12));
    Retries = R.stats().Retries.load();
    Exceptions = R.stats().TaskExceptions.load();
    Serial = R.stats().SerialFallbacks.load();
    Injected = R.stats().FaultsInjected.load();
    Commits = R.stats().Commits.load();
    Par = O.ParallelTime;
    Final = snapshotValue(R.sharedState(), Location(W.Work));
  };
  uint64_t R1, E1, S1, I1, C1, R2, E2, S2, I2, C2;
  double P1, P2;
  Value F1, F2;
  RunOnce(R1, E1, S1, I1, C1, P1, F1);
  RunOnce(R2, E2, S2, I2, C2, P2, F2);
  EXPECT_EQ(R1, R2);
  EXPECT_EQ(E1, E2);
  EXPECT_EQ(S1, S2);
  EXPECT_EQ(I1, I2);
  EXPECT_EQ(C1, C2);
  EXPECT_EQ(P1, P2);
  EXPECT_EQ(F1, F2);
  // The injected exception was consumed: task 2 recovered on retry.
  EXPECT_EQ(E1, 1u);
  EXPECT_EQ(C1, 12u);
  EXPECT_EQ(F1, Value::of(12));
}

TEST(ThreadedResilienceTest, InjectedFaultCountsAreSchedulingIndependent) {
  // Fault coordinates are (task, attempt) — stable across thread
  // interleavings. On a single worker the whole injected execution is
  // deterministic; two runs must agree on every resilience counter.
  const std::string Spec = "abort@*.1;abort@1.2;throw@2.1";
  auto RunOnce = [&](uint64_t &Retries, uint64_t &Exceptions,
                     uint64_t &Injected, uint64_t &Commits, Value &Final) {
    World W;
    WriteSetDetector D;
    ThreadedConfig C;
    C.NumThreads = 1;
    C.Faults = mustParse(Spec);
    ThreadedRuntime R(W.Reg, D, C);
    R.run(incrementTasks(Location(W.Work), 8));
    Retries = R.stats().Retries.load();
    Exceptions = R.stats().TaskExceptions.load();
    Injected = R.stats().FaultsInjected.load();
    Commits = R.stats().Commits.load();
    Final = snapshotValue(R.sharedState(), Location(W.Work));
  };
  uint64_t R1, E1, I1, C1, R2, E2, I2, C2;
  Value F1, F2;
  RunOnce(R1, E1, I1, C1, F1);
  RunOnce(R2, E2, I2, C2, F2);
  EXPECT_EQ(R1, R2);
  EXPECT_EQ(E1, E2);
  EXPECT_EQ(I1, I2);
  EXPECT_EQ(C1, C2);
  EXPECT_EQ(F1, F2);
  // 8 first-attempt aborts + task 1's second-attempt abort; task 2's
  // first attempt throws instead of aborting (throw preempts abort).
  EXPECT_EQ(C1, 8u);
  EXPECT_EQ(E1, 1u);
  EXPECT_EQ(F1, Value::of(8));
}

// ---------------------------------------------------------------------------
// Adaptive detector degradation.
// ---------------------------------------------------------------------------

TEST(DetectorDegradationTest, OpBudgetFallsBackToWriteSet) {
  World W;
  Location L(W.Work);
  auto Cache = std::make_shared<conflict::CommutativityCache>();
  conflict::SequenceDetectorConfig Cfg;
  Cfg.OnlineFallback = true;
  Cfg.OnlineOpBudget = 1; // Any pair with > 1 total ops degrades.
  conflict::SequenceDetector Det(Cache, Cfg);
  Snapshot Entry;
  Entry = Entry.set(L, Value::of(0));
  // Two adds commute under sequence reasoning (see the test below),
  // but the degraded write-set fallback conservatively reports a
  // conflict without ever reaching the online evaluator.
  TxLog Mine{{L, LocOp::add(1)}};
  auto Theirs = std::make_shared<const TxLog>(TxLog{{L, LocOp::add(2)}});
  EXPECT_TRUE(Det.detectConflicts(Entry, Mine, {Theirs}, W.Reg));
  EXPECT_GE(Det.stats().DegradedQueries.load(), 1u);
}

TEST(DetectorDegradationTest, UnlimitedBudgetNeverDegrades) {
  World W;
  Location L(W.Work);
  auto Cache = std::make_shared<conflict::CommutativityCache>();
  conflict::SequenceDetectorConfig Cfg;
  Cfg.OnlineFallback = true;
  conflict::SequenceDetector Det(Cache, Cfg);
  Snapshot Entry;
  Entry = Entry.set(L, Value::of(0));
  TxLog Mine{{L, LocOp::add(1)}};
  auto Theirs = std::make_shared<const TxLog>(TxLog{{L, LocOp::add(2)}});
  // Online evaluation proves the adds commute; no degradation.
  EXPECT_FALSE(Det.detectConflicts(Entry, Mine, {Theirs}, W.Reg));
  EXPECT_EQ(Det.stats().DegradedQueries.load(), 0u);
}

// ---------------------------------------------------------------------------
// Degraded runs still audit clean.
// ---------------------------------------------------------------------------

TEST(AuditResilienceTest, SerialFallbackRunAuditsClean) {
  // Every task is forced through two aborts and (budget 2) escalates to
  // the serial rung; the recorded trace must still replay serializably.
  World W;
  WriteSetDetector D;
  ThreadedConfig C;
  C.NumThreads = 4;
  C.RecordTrace = true;
  C.Resilience.SpeculativeRetryBudget = 2;
  C.Faults = mustParse("abort@*.*");
  ThreadedRuntime R(W.Reg, D, C);
  const int N = 20;
  std::vector<TaskFn> Tasks = incrementTasks(Location(W.Work), N);
  R.run(Tasks);
  EXPECT_EQ(R.stats().SerialFallbacks.load(), static_cast<uint64_t>(N));
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Work)), Value::of(N));
  analysis::AuditReport Report = analysis::audit(R.trace(), Tasks, W.Reg);
  EXPECT_TRUE(Report.clean()) << Report.summary();
  EXPECT_EQ(Report.Serializability.TxReplayed, static_cast<uint64_t>(N));
}

TEST(AuditResilienceTest, PlaceholderCommitAuditsClean) {
  // A permanently failing task leaves an empty placeholder commit; the
  // auditor must skip its body (replaying it would throw) and accept
  // the final state that excludes its effects.
  World W;
  WriteSetDetector D;
  SimConfig C;
  C.NumCores = 2;
  C.Ordered = true;
  C.RecordTrace = true;
  C.Resilience.ExceptionRetryBudget = 1;
  C.Faults = mustParse("throw@2.*");
  SimRuntime R(W.Reg, D, C);
  std::vector<TaskFn> Tasks = incrementTasks(Location(W.Work), 5);
  SimOutcome O = R.run(Tasks);
  ASSERT_EQ(O.Failures.size(), 1u);
  EXPECT_EQ(O.Failures[0].Tid, 2u);
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(W.Work)), Value::of(4));
  analysis::AuditReport Report = analysis::audit(R.trace(), Tasks, W.Reg);
  EXPECT_TRUE(Report.clean()) << Report.summary();
}
