//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the Janus façade (paper §7.1 API): configuration, the
/// train-then-run pipeline, both engines, both detectors, cache
/// export/import, and the Figure 1 motivating example end to end.
///
//===----------------------------------------------------------------------===//

#include "janus/adt/TxCounter.h"
#include "janus/adt/TxVar.h"
#include "janus/core/Janus.h"

#include <gtest/gtest.h>

using namespace janus;
using namespace janus::core;
using stm::TaskFn;
using stm::TxContext;

namespace {

/// Builds the Figure 1 work-accumulation tasks: each item adds its
/// weight, processes, and (on success) subtracts it again.
std::vector<TaskFn> figure1Tasks(adt::TxCounter Work, int NumItems,
                                 int FailEvery = 0) {
  std::vector<TaskFn> Tasks;
  for (int I = 1; I <= NumItems; ++I) {
    bool Fails = FailEvery && I % FailEvery == 0;
    Tasks.push_back([Work, I, Fails](TxContext &Tx) {
      Work.add(Tx, I);     // work += weightOf(item)
      Tx.localWork(5.0);   // processItem(item)
      if (!Fails)
        Work.sub(Tx, I);   // item processed successfully
    });
  }
  return Tasks;
}

} // namespace

TEST(JanusTest, DefaultsAreSequenceSimulated) {
  Janus J;
  EXPECT_EQ(J.config().Detector, DetectorKind::Sequence);
  EXPECT_EQ(J.config().Engine, EngineKind::Simulated);
  EXPECT_NE(J.sequenceDetector(), nullptr);
  EXPECT_EQ(J.detector().name(), "sequence");
}

TEST(JanusTest, WriteSetConfiguration) {
  JanusConfig Cfg;
  Cfg.Detector = DetectorKind::WriteSet;
  Janus J(Cfg);
  EXPECT_EQ(J.sequenceDetector(), nullptr);
  EXPECT_EQ(J.detector().name(), "write-set");
}

TEST(JanusTest, Figure1EndToEnd) {
  JanusConfig Cfg;
  Cfg.Threads = 8;
  Janus J(Cfg);
  adt::TxCounter Work = adt::TxCounter::create(J.registry(), "work");

  // Training: small item list.
  J.train(figure1Tasks(Work, 4));
  EXPECT_GT(J.trainStats().CachedEntries, 0u);

  // Production: all items succeed, so work nets to zero; with
  // sequence-based detection there are no retries at all.
  RunOutcome O = J.runOutOfOrder(figure1Tasks(Work, 40));
  EXPECT_EQ(J.valueAt(Work.location()), Value::of(int64_t(0)));
  EXPECT_EQ(J.runStats().Retries.load(), 0u);
  EXPECT_EQ(J.runStats().Commits.load(), 40u);
  EXPECT_GT(O.speedup(), 1.0); // 8 simulated cores, mostly local work.
}

TEST(JanusTest, Figure1WriteSetSerializes) {
  JanusConfig Cfg;
  Cfg.Threads = 8;
  Cfg.Detector = DetectorKind::WriteSet;
  Janus J(Cfg);
  adt::TxCounter Work = adt::TxCounter::create(J.registry(), "work");
  RunOutcome O = J.runOutOfOrder(figure1Tasks(Work, 40));
  EXPECT_EQ(J.valueAt(Work.location()), Value::of(int64_t(0)));
  // Write-set detection aborts overlapping add transactions.
  EXPECT_GT(J.runStats().Retries.load(), 0u);
  // And the sequence version beats it.
  JanusConfig SeqCfg;
  SeqCfg.Threads = 8;
  Janus JS(SeqCfg);
  adt::TxCounter Work2 = adt::TxCounter::create(JS.registry(), "work");
  JS.train(figure1Tasks(Work2, 4));
  RunOutcome OS = JS.runOutOfOrder(figure1Tasks(Work2, 40));
  EXPECT_GT(OS.speedup(), O.speedup());
}

TEST(JanusTest, FailedItemsLeavePendingWork) {
  Janus J;
  adt::TxCounter Work = adt::TxCounter::create(J.registry(), "work");
  J.train(figure1Tasks(Work, 4));
  // Every third item fails: its weight stays accumulated.
  J.runOutOfOrder(figure1Tasks(Work, 30, /*FailEvery=*/3));
  int64_t Expected = 0;
  for (int I = 3; I <= 30; I += 3)
    Expected += I;
  EXPECT_EQ(J.valueAt(Work.location()), Value::of(Expected));
}

TEST(JanusTest, OrderedRunsMatchSequentialState) {
  for (EngineKind Engine : {EngineKind::Simulated, EngineKind::Threaded}) {
    JanusConfig Cfg;
    Cfg.Engine = Engine;
    Cfg.Threads = 4;
    Janus J(Cfg);
    adt::TxIntVar Last = adt::TxIntVar::create(J.registry(), "last");
    std::vector<TaskFn> Tasks;
    for (int I = 1; I <= 20; ++I)
      Tasks.push_back([Last, I](TxContext &Tx) { Last.set(Tx, I); });
    J.runInOrder(Tasks);
    EXPECT_EQ(J.valueAt(Last.location()), Value::of(int64_t(20)))
        << "engine " << static_cast<int>(Engine);
  }
}

TEST(JanusTest, SetInitialSeedsState) {
  Janus J;
  adt::TxIntVar X = adt::TxIntVar::create(J.registry(), "x");
  J.setInitial(X.location(), Value::of(int64_t(100)));
  J.runOutOfOrder({[X](TxContext &Tx) {
    int64_t V = X.get(Tx);
    X.set(Tx, V + 1);
  }});
  EXPECT_EQ(J.valueAt(X.location()), Value::of(int64_t(101)));
}

TEST(JanusTest, TrainingDoesNotDisturbSharedState) {
  Janus J;
  adt::TxCounter Work = adt::TxCounter::create(J.registry(), "work");
  J.train({[Work](TxContext &Tx) { Work.add(Tx, 99); }});
  EXPECT_EQ(J.valueAt(Work.location()), Value::absent());
}

TEST(JanusTest, CacheExportImportRoundTrip) {
  Janus A;
  adt::TxCounter Work = adt::TxCounter::create(A.registry(), "work");
  A.train(figure1Tasks(Work, 4));
  std::string Exported = A.exportCache();
  EXPECT_GT(A.cache()->size(), 0u);

  // A fresh instance imports the training artifact and hits the cache
  // without any training of its own.
  Janus B;
  adt::TxCounter Work2 = adt::TxCounter::create(B.registry(), "work");
  ASSERT_TRUE(B.importCache(Exported));
  EXPECT_EQ(B.cache()->size(), A.cache()->size());
  B.runOutOfOrder(figure1Tasks(Work2, 20));
  EXPECT_EQ(B.runStats().Retries.load(), 0u);
  EXPECT_GT(B.detectorStats().CacheHits.load(), 0u);
}

TEST(JanusTest, OnlineFallbackAvoidsRetriesWithoutTraining) {
  JanusConfig Cfg;
  Cfg.Sequence.OnlineFallback = true;
  Janus J(Cfg);
  adt::TxCounter Work = adt::TxCounter::create(J.registry(), "work");
  // No training at all: every query misses, but the online check is
  // precise.
  J.runOutOfOrder(figure1Tasks(Work, 20));
  EXPECT_EQ(J.runStats().Retries.load(), 0u);
  EXPECT_GT(J.detectorStats().OnlineChecks.load(), 0u);
}
