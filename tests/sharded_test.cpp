//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the location-sharded commit pipeline (stm::ShardedRuntime)
/// and the auditor's per-shard begin refinement.
///
/// The load-bearing properties: the dense global clock gives the same
/// Theorem 4.1 commit-order semantics as the unsharded engine (ordered
/// mode commits in task order, cross-shard commits included); per-shard
/// detection admits exactly what global detection would; epoch
/// recycling under reclamation stays safe under thread churn (run this
/// binary under TSan); and a recorded sharded trace passes the full
/// hindsight audit — with the per-location begin refinement keeping
/// shard-staggered begin points from surfacing as false races.
///
//===----------------------------------------------------------------------===//

#include "janus/analysis/Auditor.h"
#include "janus/analysis/HappensBefore.h"
#include "janus/stm/Detector.h"
#include "janus/stm/ShardedRuntime.h"
#include "janus/stm/ThreadedRuntime.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <optional>

using namespace janus;
using namespace janus::stm;
using symbolic::LocOp;

namespace {

/// Builds a sharded runtime over \p Reg with the common test knobs.
ShardedConfig shardedConfig(unsigned Threads, unsigned Shards) {
  ShardedConfig Cfg;
  Cfg.NumThreads = Threads;
  Cfg.NumShards = Shards;
  Cfg.ReclaimLogs = true;
  return Cfg;
}

/// First slot index >= \p From of \p Obj whose location lands in shard
/// \p Shard under \p NumShards.
int slotInShard(ObjectId Obj, uint32_t Shard, uint32_t NumShards,
                int From = 0) {
  for (int I = From;; ++I)
    if (shardIndexOf(Location(Obj, I), NumShards) == Shard)
      return I;
}

} // namespace

TEST(ShardedRuntimeTest, ShardCountIsNormalizedToPowerOfTwo) {
  ObjectRegistry Reg;
  WriteSetDetector D;
  EXPECT_EQ(ShardedRuntime(Reg, D, shardedConfig(1, 5)).numShards(), 8u);
  EXPECT_EQ(ShardedRuntime(Reg, D, shardedConfig(1, 0)).numShards(), 1u);
  EXPECT_EQ(ShardedRuntime(Reg, D, shardedConfig(1, 16)).numShards(), 16u);
  EXPECT_EQ(ShardedRuntime(Reg, D, shardedConfig(1, 1000)).numShards(),
            ShardedRuntime::MaxShards);
}

TEST(ShardedRuntimeTest, FinalStateMatchesSequentialExpectation) {
  ObjectRegistry Reg;
  ObjectId Counter = Reg.registerObject("counter");
  ObjectId Slots = Reg.registerObject("slots", "slots.elem");
  WriteSetDetector D;
  ShardedRuntime R(Reg, D, shardedConfig(4, 8));

  const int N = 64;
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != N; ++I)
    Tasks.push_back([Counter, Slots, I](TxContext &Tx) {
      Tx.add(Location(Counter), 1);
      Tx.write(Location(Slots, I), Value::of(int64_t(I)));
    });
  R.run(Tasks);

  Snapshot S = R.sharedState();
  EXPECT_EQ(snapshotValue(S, Location(Counter)).asInt(), N);
  for (int I = 0; I != N; ++I)
    EXPECT_EQ(snapshotValue(S, Location(Slots, I)).asInt(), I);
  EXPECT_EQ(R.stats().Commits.load(), static_cast<uint64_t>(N));
}

TEST(ShardedRuntimeTest, OrderedModeCommitsCrossShardInTaskOrder) {
  ObjectRegistry Reg;
  ObjectId A = Reg.registerObject("a", "a.elem");
  ObjectId B = Reg.registerObject("b", "b.elem");
  ObjectId Last = Reg.registerObject("last");
  WriteSetDetector D;
  ShardedConfig Cfg = shardedConfig(4, 8);
  Cfg.Ordered = true;
  ShardedRuntime R(Reg, D, Cfg);

  // Every task commits across several shards (two disjoint array
  // writes plus a fully contended write); ordered mode must still
  // commit them in task order, so the contended location ends up with
  // the *last* task's value — the sequential outcome.
  const int N = 32;
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != N; ++I)
    Tasks.push_back([A, B, Last, I](TxContext &Tx) {
      Tx.write(Location(A, I), Value::of(int64_t(I)));
      Tx.write(Location(B, I + 1000), Value::of(int64_t(-I)));
      Tx.write(Location(Last), Value::of(int64_t(I)));
    });
  R.run(Tasks);

  std::vector<uint32_t> Expected(N);
  std::iota(Expected.begin(), Expected.end(), 1u);
  EXPECT_EQ(R.commitOrder(), Expected);
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(Last)).asInt(), N - 1);
  EXPECT_GT(R.stats().CrossShardCommits.load(), 0u);
}

TEST(ShardedRuntimeTest, EmptyTasksTakeTheAllocationFreeFastPath) {
  ObjectRegistry Reg;
  WriteSetDetector D;
  ShardedRuntime R(Reg, D, shardedConfig(4, 8));

  const int N = 100;
  R.run(std::vector<TaskFn>(N, [](TxContext &) {}));
  EXPECT_EQ(R.stats().Commits.load(), static_cast<uint64_t>(N));
  EXPECT_EQ(R.stats().EmptyCommits.load(), static_cast<uint64_t>(N));
  EXPECT_EQ(R.stats().Retries.load(), 0u);
  EXPECT_EQ(R.commitOrder().size(), static_cast<size_t>(N));
}

TEST(ShardedRuntimeTest, MixedCommitKindsKeepTheGlobalClockDense) {
  ObjectRegistry Reg;
  ObjectId Slots = Reg.registerObject("slots", "slots.elem");
  WriteSetDetector D;
  ShardedRuntime R(Reg, D, shardedConfig(4, 4));

  // A blend of empty, single-shard, and cross-shard tasks: the commit
  // order must contain every task exactly once (one dense clock tick
  // per commit, whatever the commit path).
  const int N = 60;
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != N; ++I) {
    if (I % 3 == 0)
      Tasks.push_back([](TxContext &) {});
    else if (I % 3 == 1)
      Tasks.push_back([Slots, I](TxContext &Tx) {
        Tx.write(Location(Slots, I), Value::of(int64_t(I)));
      });
    else
      Tasks.push_back([Slots, I](TxContext &Tx) {
        Tx.write(Location(Slots, I), Value::of(int64_t(I)));
        Tx.write(Location(Slots, I + 500), Value::of(int64_t(I)));
      });
  }
  R.run(Tasks);

  std::vector<uint32_t> Order = R.commitOrder();
  ASSERT_EQ(Order.size(), static_cast<size_t>(N));
  std::sort(Order.begin(), Order.end());
  for (int I = 0; I != N; ++I)
    EXPECT_EQ(Order[I], static_cast<uint32_t>(I + 1));
}

TEST(ShardedRuntimeTest, SingleThreadSpeculationNeverRetries) {
  ObjectRegistry Reg;
  ObjectId Counter = Reg.registerObject("counter");
  WriteSetDetector D;
  ShardedRuntime R(Reg, D, shardedConfig(1, 8));

  const int N = 50;
  std::vector<TaskFn> Tasks(N, [Counter](TxContext &Tx) {
    Tx.add(Location(Counter), 1);
  });
  R.run(Tasks);
  EXPECT_EQ(R.stats().Retries.load(), 0u);
  EXPECT_EQ(R.stats().ValidationFailures.load(), 0u);
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(Counter)).asInt(), N);
}

TEST(ShardedRuntimeTest, InitialStateIsRoutedAcrossShards) {
  ObjectRegistry Reg;
  ObjectId Slots = Reg.registerObject("slots", "slots.elem");
  WriteSetDetector D;
  ShardedRuntime R(Reg, D, shardedConfig(2, 8));

  Snapshot Init;
  for (int I = 0; I != 40; ++I)
    Init = Init.set(Location(Slots, I), Value::of(int64_t(100 + I)));
  R.setInitialState(Init);

  // Read-modify-write through the sharded store: every increment must
  // see the configured initial value of its (shard-routed) slot.
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != 40; ++I)
    Tasks.push_back([Slots, I](TxContext &Tx) {
      Value V = Tx.read(Location(Slots, I));
      Tx.write(Location(Slots, I), Value::of(V.asInt() + 1));
    });
  R.run(Tasks);

  Snapshot S = R.sharedState();
  for (int I = 0; I != 40; ++I)
    EXPECT_EQ(snapshotValue(S, Location(Slots, I)).asInt(), 101 + I);
}

// Multi-shard reclamation stress: small history segments, reclamation
// on, contended adds plus scattered writes across every shard, several
// back-to-back runs on one runtime. Under TSan this exercises the
// hazard-validated epoch recycling (pool reuse, per-shard floors).
TEST(ShardedRuntimeTest, ReclamationStressKeepsStateConsistent) {
  ObjectRegistry Reg;
  ObjectId Counter = Reg.registerObject("counter");
  ObjectId Slots = Reg.registerObject("slots", "slots.elem");
  WriteSetDetector D;
  ShardedConfig Cfg = shardedConfig(4, 16);
  Cfg.HistorySegmentRecords = 4;
  ShardedRuntime R(Reg, D, Cfg);

  const int N = 128, Rounds = 3;
  for (int Round = 0; Round != Rounds; ++Round) {
    std::vector<TaskFn> Tasks;
    for (int I = 0; I != N; ++I)
      Tasks.push_back([Counter, Slots, I](TxContext &Tx) {
        Tx.add(Location(Counter), 1);
        Tx.write(Location(Slots, I % 31), Value::of(int64_t(I)));
        Tx.write(Location(Slots, 100 + (I * 7) % 53),
                 Value::of(int64_t(I)));
      });
    R.run(Tasks);
  }
  EXPECT_EQ(snapshotValue(R.sharedState(), Location(Counter)).asInt(),
            N * Rounds);
  // Reclamation must have trimmed the per-shard histories well below
  // the total number of committed records.
  EXPECT_LT(R.historySize(), static_cast<size_t>(N));
}

TEST(ShardedRuntimeTest, RecordedShardedRunPassesTheFullAudit) {
  ObjectRegistry Reg;
  ObjectId Counter = Reg.registerObject("counter");
  ObjectId Slots = Reg.registerObject("slots", "slots.elem");
  WriteSetDetector D;
  ShardedConfig Cfg = shardedConfig(4, 8);
  Cfg.RecordTrace = true;
  ShardedRuntime R(Reg, D, Cfg);

  const int N = 80;
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != N; ++I) {
    if (I % 4 == 0)
      Tasks.push_back([Counter](TxContext &Tx) {
        Tx.add(Location(Counter), 1);
      });
    else
      Tasks.push_back([Slots, I](TxContext &Tx) {
        Tx.write(Location(Slots, I), Value::of(int64_t(I)));
        Tx.write(Location(Slots, I + 300), Value::of(int64_t(2 * I)));
      });
  }
  R.run(Tasks);

  ASSERT_TRUE(R.trace().Recorded);
  EXPECT_EQ(R.trace().Shards, R.numShards());
  analysis::AuditReport Report = analysis::audit(R.trace(), Tasks, Reg);
  EXPECT_TRUE(Report.Serializability.Checked);
  EXPECT_TRUE(Report.Races.Checked);
  EXPECT_TRUE(Report.clean()) << Report.summary();
}

TEST(ShardedRuntimeTest, OrderedShardedRunPassesTheFullAudit) {
  ObjectRegistry Reg;
  ObjectId Slots = Reg.registerObject("slots", "slots.elem");
  ObjectId Last = Reg.registerObject("last");
  WriteSetDetector D;
  ShardedConfig Cfg = shardedConfig(4, 8);
  Cfg.Ordered = true;
  Cfg.RecordTrace = true;
  ShardedRuntime R(Reg, D, Cfg);

  const int N = 40;
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != N; ++I)
    Tasks.push_back([Slots, Last, I](TxContext &Tx) {
      Tx.write(Location(Slots, I), Value::of(int64_t(I)));
      Tx.write(Location(Last), Value::of(int64_t(I)));
    });
  R.run(Tasks);

  analysis::AuditReport Report = analysis::audit(R.trace(), Tasks, Reg);
  EXPECT_TRUE(Report.clean()) << Report.summary();
}

// The regression the auditor refinement exists for: under the sharded
// engine a transaction's begin point differs per shard, so a commit
// that is *globally* concurrent with a later transaction may already
// have been observed by it at the owning shard's acquisition stamp.
// Without the per-location refinement the happens-before audit would
// flag the pair's non-commuting writes as a harmful race.
TEST(HappensBeforeShardedTest, ShardBeginsSuppressObservedPredecessors) {
  ObjectRegistry Reg;
  ObjectId Obj = Reg.registerObject("obj", "obj.elem");
  const uint32_t NumShards = 4;
  const int Slot = slotInShard(Obj, 2, NumShards);
  const Location Loc(Obj, Slot);
  // A second shard the later transaction acquired *early*, making its
  // global BeginTime predate the first transaction's commit.
  const uint32_t OtherShard = 1;
  ASSERT_NE(shardIndexOf(Loc, NumShards), OtherShard);

  auto WriteLog = [&](int64_t V) {
    return std::make_shared<const TxLog>(
        TxLog{{Loc, LocOp::write(Value::of(V))}});
  };

  AuditTrace Trace;
  Trace.Recorded = true;
  Trace.Shards = NumShards;
  // Tx 1: begins at 1, commits Loc := 5 at time 2.
  Trace.Events.push_back(TraceEvent{1, 1, 2, true, WriteLog(5), Snapshot(),
                                    CommitMode::Speculative,
                                    {{shardIndexOf(Loc, NumShards), 1},
                                     {OtherShard, 1}}});
  // Tx 2: acquired OtherShard at stamp 1 (global begin 1, so globally
  // concurrent with tx 1), but acquired Loc's shard at stamp 2 — tx
  // 1's commit was already in its entry slice there. Writes Loc := 7.
  Snapshot Tx2Entry = Snapshot().set(Loc, Value::of(int64_t(5)));
  Trace.Events.push_back(TraceEvent{2, 1, 3, true, WriteLog(7),
                                    std::move(Tx2Entry),
                                    CommitMode::Speculative,
                                    {{OtherShard, 1},
                                     {shardIndexOf(Loc, NumShards), 2}}});
  Trace.Final = Snapshot().set(Loc, Value::of(int64_t(7)));

  analysis::HappensBeforeReport Refined =
      analysis::checkHappensBefore(Trace, Reg);
  EXPECT_EQ(Refined.harmfulCount(), 0u)
      << "observed predecessor misreported as a race";

  // Teeth: the same trace without shard stamps (as an unsharded
  // engine would record it) is a genuine unordered non-commuting
  // write pair, and must be flagged.
  AuditTrace Unsharded = Trace;
  Unsharded.Shards = 1;
  for (TraceEvent &E : Unsharded.Events)
    E.ShardBegins.clear();
  analysis::HappensBeforeReport Flat =
      analysis::checkHappensBefore(Unsharded, Reg);
  EXPECT_EQ(Flat.harmfulCount(), 1u);
}

// Satellite regression guard for the unsharded engine: empty commits
// take the allocation-free fast path and are counted.
TEST(ThreadedRuntimeTest, EmptyCommitsAreCountedOnTheFastPath) {
  ObjectRegistry Reg;
  WriteSetDetector D;
  ThreadedRuntime R(Reg, D, ThreadedConfig{4, /*Ordered=*/false,
                                           /*ReclaimLogs=*/true});
  const int N = 100;
  R.run(std::vector<TaskFn>(N, [](TxContext &) {}));
  EXPECT_EQ(R.stats().Commits.load(), static_cast<uint64_t>(N));
  EXPECT_EQ(R.stats().EmptyCommits.load(), static_cast<uint64_t>(N));
  EXPECT_EQ(R.commitOrder().size(), static_cast<size_t>(N));
}

// Torn-commit probe: a cross-shard commit must publish to every touched
// shard atomically, even while a chaos plan stalls the two-phase lock
// acquisition mid-acquire (acquiredelay widens the window in which a
// broken publication would be observable), force-aborts first attempts
// and injects a transient throw. Writer tasks write the same value to
// both halves of a shard-spanning pair; probe tasks read both halves
// and commit the difference — any committed nonzero difference is a
// torn observation that escaped detection, i.e. partial publication.
TEST(ShardedRuntimeTest, TornCommitProbeUnderMidAcquireFaults) {
  ObjectRegistry Reg;
  ObjectId Pairs = Reg.registerObject("pairs", "pairs.elem");
  ObjectId Seen = Reg.registerObject("seen", "seen.elem");
  WriteSetDetector D;
  ShardedConfig Cfg = shardedConfig(4, 8);
  Cfg.RecordTrace = true;
  {
    std::string Err;
    std::optional<resilience::FaultPlan> Plan = resilience::FaultPlan::parse(
        "abort@*.1;acquiredelay@*.2=300;delay@*.3=3;throw@5.2", &Err);
    ASSERT_TRUE(Plan.has_value()) << Err;
    Cfg.Faults = std::move(*Plan);
  }
  ShardedRuntime R(Reg, D, Cfg);
  const uint32_t NumShards = R.numShards();

  // Each pair spans two distinct shards; slots are disjoint across
  // pairs (slotInShard scans forward from a per-pair floor).
  const int NumPairs = 8;
  std::vector<int> SlotA(NumPairs), SlotB(NumPairs);
  Snapshot Init;
  for (int P = 0; P != NumPairs; ++P) {
    uint32_t SA = static_cast<uint32_t>(P) % NumShards;
    uint32_t SB = (SA + NumShards / 2) % NumShards;
    SlotA[P] = slotInShard(Pairs, SA, NumShards, P * 1000);
    SlotB[P] = slotInShard(Pairs, SB, NumShards, P * 1000 + 500);
    Init = Init.set(Location(Pairs, SlotA[P]), Value::of(int64_t(P)));
    Init = Init.set(Location(Pairs, SlotB[P]), Value::of(int64_t(P)));
  }
  R.setInitialState(Init);

  // Interleave writers (both halves := same fresh value) with probes
  // (commit the observed difference into a private slot).
  const int N = 48;
  std::vector<TaskFn> Tasks;
  for (int I = 0; I != N; ++I) {
    const int P = I % NumPairs;
    const Location A(Pairs, SlotA[P]), B(Pairs, SlotB[P]);
    if (I % 2 == 0)
      Tasks.push_back([A, B, I](TxContext &Tx) {
        Tx.write(A, Value::of(int64_t(100 + I)));
        Tx.write(B, Value::of(int64_t(100 + I)));
      });
    else
      Tasks.push_back([A, B, Seen, I](TxContext &Tx) {
        int64_t VA = Tx.read(A).asInt();
        int64_t VB = Tx.read(B).asInt();
        Tx.write(Location(Seen, I), Value::of(VA - VB));
      });
  }
  R.run(Tasks);

  // The chaos plan actually fired, and cross-shard commits happened.
  EXPECT_GT(R.stats().FaultsInjected.load(), 0u);
  EXPECT_GT(R.stats().CrossShardCommits.load(), 0u);

  // No partial publication: every pair's halves agree in the final
  // state, and no probe ever committed a torn observation.
  Snapshot S = R.sharedState();
  for (int P = 0; P != NumPairs; ++P)
    EXPECT_EQ(snapshotValue(S, Location(Pairs, SlotA[P])).asInt(),
              snapshotValue(S, Location(Pairs, SlotB[P])).asInt())
        << "pair " << P << " published torn";
  for (int I = 1; I < N; I += 2)
    EXPECT_EQ(snapshotValue(S, Location(Seen, I)).asInt(), 0)
        << "probe " << I << " committed a torn read";

  // The dense clock survived the fault mix, and the recorded trace
  // passes the full hindsight audit.
  EXPECT_EQ(R.commitOrder().size(), static_cast<size_t>(N));
  analysis::AuditReport Report = analysis::audit(R.trace(), Tasks, Reg);
  EXPECT_TRUE(Report.clean()) << Report.summary();
}

TEST(ShardedRuntimeTest, ShardedAndUnshardedEnginesAgreeOnFinalState) {
  const int N = 48;
  auto MakeTasks = [](ObjectId Counter, ObjectId Slots) {
    std::vector<TaskFn> Tasks;
    for (int I = 0; I != N; ++I)
      Tasks.push_back([Counter, Slots, I](TxContext &Tx) {
        Tx.add(Location(Counter), 2);
        Tx.write(Location(Slots, I % 17), Value::of(int64_t(I % 17)));
      });
    return Tasks;
  };

  ObjectRegistry RegA;
  ObjectId CounterA = RegA.registerObject("counter");
  ObjectId SlotsA = RegA.registerObject("slots", "slots.elem");
  WriteSetDetector DA;
  ShardedRuntime Sharded(RegA, DA, shardedConfig(4, 8));
  Sharded.run(MakeTasks(CounterA, SlotsA));

  ObjectRegistry RegB;
  ObjectId CounterB = RegB.registerObject("counter");
  ObjectId SlotsB = RegB.registerObject("slots", "slots.elem");
  WriteSetDetector DB;
  ThreadedRuntime Threaded(RegB, DB, ThreadedConfig{4, false, true});
  Threaded.run(MakeTasks(CounterB, SlotsB));

  EXPECT_EQ(snapshotValue(Sharded.sharedState(), Location(CounterA)).asInt(),
            snapshotValue(Threaded.sharedState(), Location(CounterB))
                .asInt());
  for (int I = 0; I != 17; ++I)
    EXPECT_EQ(
        snapshotValue(Sharded.sharedState(), Location(SlotsA, I)).asInt(),
        snapshotValue(Threaded.sharedState(), Location(SlotsB, I)).asInt());
}
