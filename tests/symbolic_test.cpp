//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for the symbolic module: per-location
/// operation semantics, terms, conditions, and symbolic commutativity
/// conditions (paper §5.1 step 3).
///
/// The central property test validates conditions against concrete
/// ground truth: for random concrete sequence pairs and entry states,
/// evaluating the learned condition under the concrete bindings must
/// match a direct two-order evaluation.
///
//===----------------------------------------------------------------------===//

#include "janus/support/Rng.h"
#include "janus/symbolic/Condition.h"
#include "janus/symbolic/LocOp.h"
#include "janus/symbolic/SymSeq.h"

#include <gtest/gtest.h>

using namespace janus;
using namespace janus::symbolic;

// ---------------------------------------------------------------------------
// LocOp concrete semantics.
// ---------------------------------------------------------------------------

TEST(LocOpTest, ReadLeavesValueAndRecordsIt) {
  LocOpSeq Seq = {LocOp::read(), LocOp::write(Value::of(5)), LocOp::read()};
  SeqEval E = evalSequence(Value::of(3), Seq);
  EXPECT_EQ(E.Final, Value::of(5));
  ASSERT_EQ(E.Reads.size(), 2u);
  EXPECT_EQ(E.Reads[0], Value::of(3));
  EXPECT_EQ(E.Reads[1], Value::of(5));
}

TEST(LocOpTest, AddAccumulates) {
  LocOpSeq Seq = {LocOp::add(2), LocOp::add(-5)};
  EXPECT_EQ(evalSequence(Value::of(10), Seq).Final, Value::of(7));
}

TEST(LocOpTest, AddOnAbsentStartsFromZero) {
  EXPECT_EQ(evalSequence(Value::absent(), LocOpSeq{LocOp::add(4)}).Final,
            Value::of(4));
}

TEST(LocOpTest, WriteOverwritesAnyKind) {
  EXPECT_EQ(
      evalSequence(Value::of("old"), LocOpSeq{LocOp::write(Value::of(1))})
          .Final,
      Value::of(1));
}

TEST(LocOpTest, OperationalEqualityIgnoresReadResult) {
  EXPECT_EQ(LocOp::read(Value::of(1)), LocOp::read(Value::of(2)));
  EXPECT_NE(LocOp::write(Value::of(1)), LocOp::write(Value::of(2)));
  EXPECT_NE(LocOp::add(1), LocOp::write(Value::of(1)));
}

TEST(LocOpTest, ToStringIsReadable) {
  EXPECT_EQ(LocOp::add(-3).toString(), "A(-3)");
  EXPECT_EQ(LocOp::add(3).toString(), "A(+3)");
  EXPECT_EQ(LocOp::write(Value::of(9)).toString(), "W(9)");
  EXPECT_EQ(sequenceToString(LocOpSeq{LocOp::read(), LocOp::add(1)}),
            "R, A(+1)");
}

// ---------------------------------------------------------------------------
// Terms.
// ---------------------------------------------------------------------------

TEST(TermTest, IntConstantsCanonicalizeToLinear) {
  Term A = Term::constant(Value::of(3));
  Term B = Term::constant(Value::of(3));
  EXPECT_EQ(A, B);
  EXPECT_TRUE(A.isNumeric());
  auto Sum = Term::add(A, Term::constant(Value::of(4)));
  ASSERT_TRUE(Sum.has_value());
  EXPECT_EQ(Sum->evaluate({}).value(), Value::of(7));
}

TEST(TermTest, LinearArithmetic) {
  Term X = Term::intSym(1), Y = Term::intSym(2);
  auto Sum = Term::add(X, Y);
  ASSERT_TRUE(Sum);
  auto MinusX = X.negated();
  ASSERT_TRUE(MinusX);
  auto Zero = Term::add(X, *MinusX);
  ASSERT_TRUE(Zero);
  EXPECT_EQ(Term::staticallyEqual(*Zero, Term::constant(Value::of(0))),
            std::make_optional(true));
  // x + y evaluated under x=2, y=5.
  Bindings B{{1, Value::of(2)}, {2, Value::of(5)}};
  EXPECT_EQ(Sum->evaluate(B).value(), Value::of(7));
}

TEST(TermTest, StaticEqualityDecisions) {
  Term X = Term::intSym(1);
  // x == x: true; x == x+1: false; x == y: unknown.
  EXPECT_EQ(Term::staticallyEqual(X, X), std::make_optional(true));
  EXPECT_EQ(Term::staticallyEqual(X, *X.plusConst(1)),
            std::make_optional(false));
  EXPECT_EQ(Term::staticallyEqual(X, Term::intSym(2)), std::nullopt);
  // Opaque symbols: same id true, different unknown.
  Term Q1 = Term::opaqueSym(7), Q2 = Term::opaqueSym(8);
  EXPECT_EQ(Term::staticallyEqual(Q1, Q1), std::make_optional(true));
  EXPECT_EQ(Term::staticallyEqual(Q1, Q2), std::nullopt);
  // A string constant can never equal an integer expression.
  EXPECT_EQ(Term::staticallyEqual(Term::constant(Value::of("s")), X),
            std::make_optional(false));
  EXPECT_EQ(Term::staticallyEqual(Term::constant(Value::of("s")),
                                  Term::constant(Value::of("s"))),
            std::make_optional(true));
}

TEST(TermTest, EvaluationFailsOnUnboundOrNonInt) {
  Term X = Term::intSym(1);
  EXPECT_EQ(X.evaluate({}), std::nullopt);
  Bindings B{{1, Value::of("str")}};
  EXPECT_EQ(X.evaluate(B), std::nullopt);
  Term Q = Term::opaqueSym(1);
  EXPECT_EQ(Q.evaluate(B).value(), Value::of("str"));
}

TEST(TermTest, ReadPlusMustBeResolved) {
  Term R = Term::readPlus(0, 1);
  EXPECT_EQ(R.evaluate({}), std::nullopt);
  EXPECT_EQ(R.readIndex(), 0u);
  EXPECT_EQ(R.readOffset(), 1);
  EXPECT_EQ(R.plusConst(2)->readOffset(), 3);
}

TEST(TermTest, ToString) {
  Term T = *Term::add(Term::intSym(EntrySym),
                      *Term::intSym(1).negated());
  EXPECT_EQ(T.toString(), "v0 - p1");
  EXPECT_EQ(Term::constant(Value::of(0)).toString(), "0");
  EXPECT_EQ(Term::readPlus(1, 1).toString(), "read#1+1");
}

// ---------------------------------------------------------------------------
// Conditions.
// ---------------------------------------------------------------------------

TEST(ConditionTest, StaticFolding) {
  Condition C = Condition::valid();
  EXPECT_TRUE(C.isValid());
  C.requireEqual(Term::constant(Value::of(1)), Term::constant(Value::of(1)));
  EXPECT_TRUE(C.isValid());
  C.requireEqual(Term::intSym(1), Term::intSym(1));
  EXPECT_TRUE(C.isValid());
  C.requireEqual(Term::constant(Value::of(1)), Term::constant(Value::of(2)));
  EXPECT_TRUE(C.isNever());
  // Never absorbs further constraints.
  C.requireEqual(Term::intSym(1), Term::intSym(2));
  EXPECT_TRUE(C.isNever());
  EXPECT_EQ(C.evaluate({}), std::make_optional(false));
}

TEST(ConditionTest, ConditionalEvaluation) {
  Condition C = Condition::valid();
  C.requireEqual(Term::intSym(1), Term::intSym(2));
  EXPECT_TRUE(C.isConditional());
  EXPECT_EQ(C.evaluate({{1, Value::of(3)}, {2, Value::of(3)}}),
            std::make_optional(true));
  EXPECT_EQ(C.evaluate({{1, Value::of(3)}, {2, Value::of(4)}}),
            std::make_optional(false));
  EXPECT_EQ(C.evaluate({{1, Value::of(3)}}), std::nullopt);
}

TEST(ConditionTest, DuplicateAtomsAreKeptOnce) {
  Condition C = Condition::valid();
  C.requireEqual(Term::intSym(1), Term::intSym(2));
  C.requireEqual(Term::intSym(2), Term::intSym(1)); // Symmetric duplicate.
  EXPECT_EQ(C.atoms().size(), 1u);
}

// ---------------------------------------------------------------------------
// Symbolic evaluation and commutativity conditions.
// ---------------------------------------------------------------------------

TEST(SymSeqTest, EvalResolvesReadReferences) {
  // Push pattern: R (observe size n), W(read#0 + 1).
  SymLocSeq Push = {SymLocOp::read(),
                    SymLocOp::write(Term::readPlus(0, 1))};
  auto E = evalSymbolic(Term::intSym(EntrySym), Push);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Final.toString(), "v0 + 1");
}

TEST(SymSeqTest, EvalFailsOnForwardReadReference) {
  SymLocSeq Bad = {SymLocOp::write(Term::readPlus(0, 0)), SymLocOp::read()};
  EXPECT_EQ(evalSymbolic(Term::intSym(EntrySym), Bad), std::nullopt);
}

TEST(SymSeqTest, EvalFailsOnNonNumericAdd) {
  SymLocSeq Seq = {SymLocOp::write(Term::constant(Value::of("abc"))),
                   SymLocOp::add(Term::constant(Value::of(1)))};
  EXPECT_EQ(evalSymbolic(Term::opaqueSym(EntrySym), Seq), std::nullopt);
}

TEST(CommutativityConditionTest, BalancedAddsCommuteUnconditionally) {
  // The motivating example (Figure 1): { work+=x; work-=x } vs
  // { work+=y; work-=y } — identity pattern, commutes always.
  Term X = Term::intSym(1), Y = Term::intSym(2);
  SymLocSeq A = {SymLocOp::add(X), SymLocOp::add(*X.negated())};
  SymLocSeq B = {SymLocOp::add(Y), SymLocOp::add(*Y.negated())};
  auto C = commutativityCondition(A, B);
  ASSERT_TRUE(C.has_value());
  EXPECT_TRUE(C->isValid());
}

TEST(CommutativityConditionTest, AddsCommuteEvenUnbalanced) {
  // Reduction pattern: pure adds always commute.
  SymLocSeq A = {SymLocOp::add(Term::intSym(1))};
  SymLocSeq B = {SymLocOp::add(Term::intSym(2)),
                 SymLocOp::add(Term::intSym(3))};
  auto C = commutativityCondition(A, B);
  ASSERT_TRUE(C.has_value());
  EXPECT_TRUE(C->isValid());
}

TEST(CommutativityConditionTest, EqualWritesCondition) {
  // Two writes commute iff they write the same value (equal-writes
  // pattern, Weka).
  SymLocSeq A = {SymLocOp::write(Term::opaqueSym(1))};
  SymLocSeq B = {SymLocOp::write(Term::opaqueSym(2))};
  auto C = commutativityCondition(A, B);
  ASSERT_TRUE(C.has_value());
  EXPECT_TRUE(C->isConditional());
  EXPECT_EQ(C->evaluate({{1, Value::of(7)}, {2, Value::of(7)}}),
            std::make_optional(true));
  EXPECT_EQ(C->evaluate({{1, Value::of(7)}, {2, Value::of(8)}}),
            std::make_optional(false));
}

TEST(CommutativityConditionTest, ReadVsWriteRequiresRestoringValue) {
  // A reads; B writes p1. They commute iff p1 == v0 (B restores the
  // entry value), since A's read must be unaffected.
  SymLocSeq A = {SymLocOp::read()};
  SymLocSeq B = {SymLocOp::write(Term::opaqueSym(1))};
  auto C = commutativityCondition(A, B);
  ASSERT_TRUE(C.has_value());
  EXPECT_TRUE(C->isConditional());
  EXPECT_EQ(C->evaluate({{EntrySym, Value::of(4)}, {1, Value::of(4)}}),
            std::make_optional(true));
  EXPECT_EQ(C->evaluate({{EntrySym, Value::of(4)}, {1, Value::of(5)}}),
            std::make_optional(false));
}

TEST(CommutativityConditionTest, RelaxationsDropChecks) {
  // With RAW tolerated (drop SAMEREAD), a read never conflicts with a
  // write — the spurious-reads pattern (JGraphT-1's maxColor).
  SymLocSeq A = {SymLocOp::read()};
  SymLocSeq B = {SymLocOp::write(Term::opaqueSym(1))};
  ChecksSpec Relaxed;
  Relaxed.SameReadA = false;
  Relaxed.SameReadB = false;
  auto C = commutativityCondition(A, B, Relaxed);
  ASSERT_TRUE(C.has_value());
  EXPECT_TRUE(C->isValid()); // A is read-only: final state is B's write.

  // With WAW tolerated (drop COMMUTE), two blind writes never conflict —
  // the shared-as-local pattern (PMD's ctx fields).
  SymLocSeq W1 = {SymLocOp::write(Term::opaqueSym(1))};
  SymLocSeq W2 = {SymLocOp::write(Term::opaqueSym(2))};
  ChecksSpec NoCommute;
  NoCommute.Commute = false;
  auto C2 = commutativityCondition(W1, W2, NoCommute);
  ASSERT_TRUE(C2.has_value());
  EXPECT_TRUE(C2->isValid());
}

TEST(CommutativityConditionTest, PushPopIdentityOnList) {
  // JFileSync monitor: push = R, W(read#0+1); pop = R, W(read#0-1).
  // A balanced push;pop sequence restores the size, so two such
  // sequences commute unconditionally.
  SymLocSeq PushPop = {SymLocOp::read(), SymLocOp::write(Term::readPlus(0, 1)),
                       SymLocOp::read(),
                       SymLocOp::write(Term::readPlus(1, -1))};
  auto C = commutativityCondition(PushPop, PushPop);
  ASSERT_TRUE(C.has_value());
  EXPECT_TRUE(C->isValid());
}

TEST(CommutativityConditionTest, UnbalancedPushesConflict) {
  SymLocSeq Push = {SymLocOp::read(),
                    SymLocOp::write(Term::readPlus(0, 1))};
  SymLocSeq ReadOnly = {SymLocOp::read()};
  auto C = commutativityCondition(Push, ReadOnly);
  ASSERT_TRUE(C.has_value());
  // ReadOnly's read differs by 1 between orders: never commutes.
  EXPECT_TRUE(C->isNever());
}

// ---------------------------------------------------------------------------
// Property: symbolic conditions are sound and complete against concrete
// two-order evaluation on random sequences.
// ---------------------------------------------------------------------------

namespace {

/// Builds a random symbolic sequence and a concrete instantiation of
/// its parameters.
struct RandomSeq {
  SymLocSeq Sym;
  LocOpSeq Concrete;
};

RandomSeq randomSeq(Rng &R, Bindings &B, SymId &NextSym) {
  RandomSeq Out;
  size_t Len = 1 + R.below(4);
  for (size_t I = 0; I != Len; ++I) {
    switch (R.below(3)) {
    case 0:
      Out.Sym.push_back(SymLocOp::read());
      Out.Concrete.push_back(LocOp::read());
      break;
    case 1: {
      SymId S = NextSym++;
      int64_t V = R.range(-3, 3);
      B[S] = Value::of(V);
      Out.Sym.push_back(SymLocOp::add(Term::intSym(S)));
      Out.Concrete.push_back(LocOp::add(V));
      break;
    }
    default: {
      SymId S = NextSym++;
      int64_t V = R.range(-3, 3);
      B[S] = Value::of(V);
      Out.Sym.push_back(SymLocOp::write(Term::intSym(S)));
      Out.Concrete.push_back(LocOp::write(Value::of(V)));
      break;
    }
    }
  }
  return Out;
}

/// Ground truth: Figure 8's conflict semantics evaluated concretely.
bool concretelyCommute(const Value &Entry, const LocOpSeq &A,
                       const LocOpSeq &B) {
  SeqEval AloneA = evalSequence(Entry, A);
  SeqEval AloneB = evalSequence(Entry, B);
  SeqEval AAfterB = evalSequence(AloneB.Final, A);
  SeqEval BAfterA = evalSequence(AloneA.Final, B);
  if (BAfterA.Final != AAfterB.Final)
    return false;
  if (AloneA.Reads != AAfterB.Reads)
    return false;
  if (AloneB.Reads != BAfterA.Reads)
    return false;
  return true;
}

} // namespace

class ConditionSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConditionSoundness, MatchesConcreteGroundTruth) {
  Rng R(GetParam());
  for (int Iter = 0; Iter != 300; ++Iter) {
    Bindings B;
    SymId NextSym = 1;
    RandomSeq SA = randomSeq(R, B, NextSym);
    RandomSeq SB = randomSeq(R, B, NextSym);
    int64_t Entry = R.range(-4, 4);
    B[EntrySym] = Value::of(Entry);

    auto Cond = commutativityCondition(SA.Sym, SB.Sym);
    ASSERT_TRUE(Cond.has_value()) << "iteration " << Iter;
    auto Verdict = Cond->evaluate(B);
    ASSERT_TRUE(Verdict.has_value()) << "iteration " << Iter;

    bool Truth =
        concretelyCommute(Value::of(Entry), SA.Concrete, SB.Concrete);
    EXPECT_EQ(*Verdict, Truth)
        << "iteration " << Iter << "\n A = " << symSeqToString(SA.Sym)
        << "\n B = " << symSeqToString(SB.Sym)
        << "\n cond = " << Cond->toString() << "\n entry = " << Entry;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConditionSoundness,
                         ::testing::Values(101, 202, 303, 404, 505));

// ---------------------------------------------------------------------------
// Container-presence distinctions (§5.1: "we further support certain
// useful distinctions that are particular to container ADTs, such as
// the presence of a key in a Map object"). Presence is modeled by the
// per-key location holding Absent; erases are literal constants, so
// conditions can pivot on them.
// ---------------------------------------------------------------------------

TEST(PresenceConditionTest, PutVsEraseNeverCommute) {
  // put(k, v) vs erase(k): the final presence of k differs by order.
  SymLocSeq Put = {SymLocOp::write(Term::opaqueSym(1))};
  SymLocSeq Erase = {SymLocOp::write(Term::constant(Value::absent()))};
  auto C = commutativityCondition(Put, Erase);
  ASSERT_TRUE(C.has_value());
  // Condition q1 == absent, which no stored value satisfies.
  EXPECT_TRUE(C->isConditional());
  EXPECT_EQ(C->evaluate({{1, Value::of(3)}}), std::make_optional(false));
}

TEST(PresenceConditionTest, DoubleEraseCommutes) {
  SymLocSeq EraseA = {SymLocOp::write(Term::constant(Value::absent()))};
  SymLocSeq EraseB = {SymLocOp::write(Term::constant(Value::absent()))};
  auto C = commutativityCondition(EraseA, EraseB);
  ASSERT_TRUE(C.has_value());
  EXPECT_TRUE(C->isValid());
}

TEST(PresenceConditionTest, ContainsVsEraseDependsOnPriorPresence) {
  // contains(k) (a read) vs erase(k): commute exactly when the key was
  // already absent (the read observes Absent either way).
  SymLocSeq Contains = {SymLocOp::read()};
  SymLocSeq Erase = {SymLocOp::write(Term::constant(Value::absent()))};
  auto C = commutativityCondition(Contains, Erase);
  ASSERT_TRUE(C.has_value());
  EXPECT_TRUE(C->isConditional());
  // v0 == absent ⇒ commute.
  EXPECT_EQ(C->evaluate({{EntrySym, Value::absent()}}),
            std::make_optional(true));
  EXPECT_EQ(C->evaluate({{EntrySym, Value::of(9)}}),
            std::make_optional(false));
}

TEST(PresenceConditionTest, PutAfterEraseWithinOneTransaction) {
  // erase(k); put(k, v) vs put(k, w): the last writes must agree, and
  // the erased intermediate is dead (write-over-write), so the learned
  // condition is exactly equal-writes.
  SymLocSeq EraseThenPut = {
      SymLocOp::write(Term::constant(Value::absent())),
      SymLocOp::write(Term::opaqueSym(1))};
  SymLocSeq Put = {SymLocOp::write(Term::opaqueSym(2))};
  auto C = commutativityCondition(EraseThenPut, Put);
  ASSERT_TRUE(C.has_value());
  EXPECT_TRUE(C->isConditional());
  EXPECT_EQ(C->evaluate({{1, Value::of(4)}, {2, Value::of(4)}}),
            std::make_optional(true));
  EXPECT_EQ(C->evaluate({{1, Value::of(4)}, {2, Value::of(5)}}),
            std::make_optional(false));
}
