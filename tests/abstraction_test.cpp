//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for sequence abstraction (paper §5.2):
/// canonical symbolization, idempotence detection, Kleene-cross
/// collapse, and the Lemma 5.1 pumping property — a sequence and its
/// pumped variants must abstract to identical signatures, and CONFLICT
/// verdicts must be unchanged by pumping.
///
//===----------------------------------------------------------------------===//

#include "janus/abstraction/AbstractSeq.h"
#include "janus/abstraction/Symbolize.h"
#include "janus/support/Rng.h"

#include <gtest/gtest.h>

using namespace janus;
using namespace janus::abstraction;
using namespace janus::symbolic;

// ---------------------------------------------------------------------------
// Symbolization.
// ---------------------------------------------------------------------------

TEST(SymbolizeTest, FreshParamsNumberedByAppearance) {
  LocOpSeq Seq{LocOp::add(2), LocOp::add(5)};
  SymbolizeResult R = symbolize(Seq);
  EXPECT_EQ(symSeqToString(R.Seq), "A(p1), A(p2)");
  EXPECT_EQ(R.Binds.at(1), Value::of(2));
  EXPECT_EQ(R.Binds.at(2), Value::of(5));
}

TEST(SymbolizeTest, NegatedAddSharesSymbol) {
  // { work+=3; work-=3 } → { work+=x; work-=x } (paper §5.1).
  LocOpSeq Seq{LocOp::add(3), LocOp::add(-3)};
  SymbolizeResult R = symbolize(Seq);
  EXPECT_EQ(symSeqToString(R.Seq), "A(p1), A(-p1)");
  EXPECT_EQ(R.Binds.size(), 1u);
}

TEST(SymbolizeTest, RepeatedOperandSharesSymbol) {
  LocOpSeq Seq{LocOp::add(4), LocOp::add(4)};
  EXPECT_EQ(symSeqToString(symbolize(Seq).Seq), "A(p1), A(p1)");
  LocOpSeq WSeq{LocOp::write(Value::of("c")), LocOp::write(Value::of("c"))};
  EXPECT_EQ(symSeqToString(symbolize(WSeq).Seq), "W(q1), W(q1)");
}

TEST(SymbolizeTest, WriteOfReadPlusOffset) {
  // Push: read size (5), write 6 → W(read#0 + 1).
  LocOpSeq Seq{LocOp::read(Value::of(5)), LocOp::write(Value::of(6))};
  EXPECT_EQ(symSeqToString(symbolize(Seq).Seq), "R, W(read#0+1)");
  // Write-back of the read value itself.
  LocOpSeq Seq2{LocOp::read(Value::of(5)), LocOp::write(Value::of(5))};
  EXPECT_EQ(symSeqToString(symbolize(Seq2).Seq), "R, W(read#0)");
}

TEST(SymbolizeTest, FarWriteGetsFreshSymbol) {
  // Offset beyond MaxReadOffset: not a read-plus pattern.
  LocOpSeq Seq{LocOp::read(Value::of(5)), LocOp::write(Value::of(100))};
  EXPECT_EQ(symSeqToString(symbolize(Seq).Seq), "R, W(p1)");
}

TEST(SymbolizeTest, NonIntWritesAreOpaque) {
  LocOpSeq Seq{LocOp::write(Value::of("black"))};
  SymbolizeResult R = symbolize(Seq);
  EXPECT_EQ(symSeqToString(R.Seq), "W(q1)");
  EXPECT_EQ(R.Binds.at(1), Value::of("black"));
}

TEST(SymbolizeTest, DeterministicAndCanonical) {
  LocOpSeq A{LocOp::add(7), LocOp::read(Value::of(7)), LocOp::add(-7)};
  LocOpSeq B{LocOp::add(9), LocOp::read(Value::of(9)), LocOp::add(-9)};
  // Same relationships, different values: identical symbolic structure.
  EXPECT_EQ(symbolize(A).Seq, symbolize(B).Seq);
}

// ---------------------------------------------------------------------------
// Idempotence.
// ---------------------------------------------------------------------------

TEST(IdempotenceTest, BalancedAddPairIsIdempotent) {
  SymLocSeq Body{SymLocOp::add(Term::intSym(1)),
                 SymLocOp::add(*Term::intSym(1).negated())};
  EXPECT_TRUE(isIdempotent(Body));
}

TEST(IdempotenceTest, SingleAddIsNot) {
  SymLocSeq Body{SymLocOp::add(Term::intSym(1))};
  EXPECT_FALSE(isIdempotent(Body));
}

TEST(IdempotenceTest, SingleWriteIsNotAcrossFreshParams) {
  // W(p); W(p') yields p' — collapsing W(p) to a group would be
  // unsound, so the fresh-parameter check must reject it.
  SymLocSeq Body{SymLocOp::write(Term::opaqueSym(1))};
  EXPECT_FALSE(isIdempotent(Body));
}

TEST(IdempotenceTest, PureReadIsIdempotent) {
  SymLocSeq Body{SymLocOp::read()};
  EXPECT_TRUE(isIdempotent(Body));
}

TEST(IdempotenceTest, PushPopIsIdempotent) {
  SymLocSeq Body{SymLocOp::read(), SymLocOp::write(Term::readPlus(0, 1)),
                 SymLocOp::read(), SymLocOp::write(Term::readPlus(1, -1))};
  EXPECT_TRUE(isIdempotent(Body));
}

TEST(IdempotenceTest, WriteBackOfReadIsIdempotent) {
  SymLocSeq Body{SymLocOp::read(), SymLocOp::write(Term::readPlus(0, 0))};
  EXPECT_TRUE(isIdempotent(Body));
}

// ---------------------------------------------------------------------------
// Abstraction (Kleene collapse).
// ---------------------------------------------------------------------------

namespace {

std::string sigOf(const LocOpSeq &Seq, bool Kleene = true) {
  return abstractSequence(symbolize(Seq), Kleene).Seq.signature();
}

} // namespace

TEST(AbstractSeqTest, CollapsesBalancedAddRuns) {
  // { +=2, -=2, +=1, -=1 }: the add-run collapse subsumes the paper's
  // { work+=x; work-=x; }+ abstraction — any adjacent add run becomes a
  // single add of its total, so every balanced run shares one
  // signature.
  LocOpSeq Seq{LocOp::add(2), LocOp::add(-2), LocOp::add(1), LocOp::add(-1)};
  EXPECT_EQ(sigOf(Seq), "A(p1)");
  // A single balanced pair abstracts to the same signature.
  LocOpSeq One{LocOp::add(9), LocOp::add(-9)};
  EXPECT_EQ(sigOf(One), sigOf(Seq));
  // The synthetic parameter is bound to the run's total (0 here).
  AbstractResult R = abstractSequence(symbolize(One), true);
  ASSERT_EQ(R.Binds.size(), 1u);
  EXPECT_EQ(R.Binds.begin()->second, Value::of(int64_t(0)));
}

TEST(AbstractSeqTest, PumpingInvariance) {
  // Lemma 5.1: any repetition count yields the same signature.
  std::string Expected;
  for (int Reps = 1; Reps <= 5; ++Reps) {
    LocOpSeq Seq;
    for (int I = 0; I != Reps; ++I) {
      Seq.push_back(LocOp::add(I + 1));
      Seq.push_back(LocOp::add(-(I + 1)));
    }
    std::string Sig = sigOf(Seq);
    if (Reps == 1)
      Expected = Sig;
    EXPECT_EQ(Sig, Expected) << Reps << " repetitions";
  }
}

TEST(AbstractSeqTest, ReadRunsCollapse) {
  LocOpSeq One{LocOp::read(Value::of(1))};
  LocOpSeq Many{LocOp::read(Value::of(1)), LocOp::read(Value::of(1)),
                LocOp::read(Value::of(1))};
  EXPECT_EQ(sigOf(One), sigOf(Many));
  EXPECT_EQ(sigOf(One), "[R]+");
}

TEST(AbstractSeqTest, UnbalancedAddRunsMergeToTheirTotal) {
  LocOpSeq Seq{LocOp::add(2), LocOp::add(3)};
  EXPECT_EQ(sigOf(Seq), "A(p1)");
  AbstractResult R = abstractSequence(symbolize(Seq), true);
  EXPECT_EQ(R.Binds.begin()->second, Value::of(int64_t(5)));
  // A read in between prevents merging: the intermediate value is
  // observable.
  LocOpSeq WithRead{LocOp::add(2), LocOp::read(Value::of(2)),
                    LocOp::add(3)};
  EXPECT_EQ(sigOf(WithRead), "A(p1), [R]+, A(p2)");
}

TEST(AbstractSeqTest, DeadWritesAreEliminated) {
  // Adjacent writes: only the last is observable per-location, so the
  // canonical form keeps just it.
  LocOpSeq Seq{LocOp::write(Value::of(1)), LocOp::write(Value::of(2))};
  EXPECT_EQ(sigOf(Seq), "W(p1)");
  // A write also kills a preceding add (its effect is overwritten).
  LocOpSeq AddThenWrite{LocOp::add(5), LocOp::write(Value::of(2))};
  EXPECT_EQ(sigOf(AddThenWrite), "W(p1)");
  // A read in between keeps both writes (the intermediate value is
  // observable). Values are chosen far apart so the second write is
  // not a read-plus pattern.
  LocOpSeq Seq2{LocOp::write(Value::of(1)), LocOp::read(Value::of(1)),
                LocOp::write(Value::of(50))};
  EXPECT_EQ(sigOf(Seq2), "W(p1), [R]+, W(p2)");
  // Without abstraction the concrete shape is preserved.
  EXPECT_EQ(sigOf(Seq, false), "W(p1), W(p2)");
}

TEST(AbstractSeqTest, PushPopCollapsesAcrossDepths) {
  // JFileSync: nested balanced push/pop runs of varying depth.
  auto PushPop = [](LocOpSeq &Seq, int64_t Size) {
    Seq.push_back(LocOp::read(Value::of(Size)));
    Seq.push_back(LocOp::write(Value::of(Size + 1)));
    Seq.push_back(LocOp::read(Value::of(Size + 1)));
    Seq.push_back(LocOp::write(Value::of(Size)));
  };
  LocOpSeq One, Three;
  PushPop(One, 4);
  PushPop(Three, 4);
  PushPop(Three, 4);
  PushPop(Three, 4);
  EXPECT_EQ(sigOf(One), sigOf(Three));
  EXPECT_EQ(sigOf(One), "[R, W(read#0+1), R, W(read#1-1)]+");
}

TEST(AbstractSeqTest, NoKleeneKeepsConcreteShape) {
  LocOpSeq Seq{LocOp::add(2), LocOp::add(-2), LocOp::add(1), LocOp::add(-1)};
  EXPECT_EQ(sigOf(Seq, /*Kleene=*/false), "A(p1), A(-p1), A(p2), A(-p2)");
  // Without abstraction, pumped variants have distinct signatures.
  LocOpSeq Short{LocOp::add(2), LocOp::add(-2)};
  EXPECT_NE(sigOf(Seq, false), sigOf(Short, false));
}

TEST(AbstractSeqTest, ListCellHistoriesNormalizeToErase) {
  // The list element cells of the JFileSync monitors see write/erase
  // pairs; dead-write elimination reduces any balanced history to the
  // final erase, so every depth and value yields one signature.
  LocOpSeq Seq{LocOp::write(Value::of(7)), LocOp::write(Value::absent()),
               LocOp::write(Value::of(9)), LocOp::write(Value::absent())};
  EXPECT_EQ(sigOf(Seq), "[W(absent)]+");
  LocOpSeq One{LocOp::write(Value::of(3)), LocOp::write(Value::absent())};
  EXPECT_EQ(sigOf(One), sigOf(Seq));
  // Without abstraction each shape stays distinct.
  EXPECT_NE(sigOf(One, false), sigOf(Seq, false));
}

TEST(AbstractSeqTest, MixedSequencePreservesOrder) {
  // The read result (42) is far from the written value (3), so the
  // write is a fresh parameter, not a read-plus pattern. The add run is
  // dead (overwritten by the write with no read in between).
  LocOpSeq Seq{LocOp::read(Value::of(42)), LocOp::add(5), LocOp::add(-5),
               LocOp::write(Value::of(3))};
  EXPECT_EQ(sigOf(Seq), "[R]+, W(p1)");
  // With a read separating them, the adds survive and merge.
  LocOpSeq Seq2{LocOp::read(Value::of(42)), LocOp::add(5), LocOp::add(-5),
                LocOp::read(Value::of(42)), LocOp::write(Value::of(3))};
  EXPECT_EQ(sigOf(Seq2), "[R]+, A(p1), [R]+, W(p2)");
}

TEST(AbstractSeqTest, ExpandOnceRebuildsGlobalReadIndices) {
  LocOpSeq Seq{LocOp::read(Value::of(7)), LocOp::write(Value::of(8)),
               LocOp::read(Value::of(8)), LocOp::write(Value::of(7))};
  AbstractResult R = abstractSequence(symbolize(Seq), true);
  SymLocSeq Expanded = R.Seq.expandOnce();
  // One unrolling of the push/pop body.
  EXPECT_EQ(symSeqToString(Expanded), "R, W(read#0+1), R, W(read#1-1)");
}

TEST(AbstractSeqTest, BindingsSurviveRenumbering) {
  // The read between the add and the write keeps both live.
  LocOpSeq Seq{LocOp::add(7), LocOp::read(Value::of(7)),
               LocOp::write(Value::of("x"))};
  AbstractResult R = abstractSequence(symbolize(Seq), true);
  // Two params total; both bound.
  EXPECT_EQ(R.Binds.size(), 2u);
  bool SawInt = false, SawStr = false;
  for (const auto &[S, V] : R.Binds) {
    (void)S;
    SawInt = SawInt || V == Value::of(7);
    SawStr = SawStr || V == Value::of("x");
  }
  EXPECT_TRUE(SawInt && SawStr);
}

/// Property: abstraction signatures are invariant under pumping any
/// collapsed group, for random mixed sequences.
class PumpingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PumpingProperty, SignaturesInvariantUnderPumping) {
  Rng R(GetParam());
  for (int Iter = 0; Iter != 50; ++Iter) {
    // Generate a random base sequence of identity-ish fragments and
    // noise ops.
    LocOpSeq Base;
    int64_t Cur = R.range(0, 5);
    LocOpSeq Pumped;
    for (int Frag = 0, E = 1 + static_cast<int>(R.below(4)); Frag != E;
         ++Frag) {
      switch (R.below(3)) {
      case 0: { // Balanced add pair; pumped twice in the variant.
        int64_t D = R.range(1, 6);
        for (int K = 0; K != 1; ++K) {
          Base.push_back(LocOp::add(D));
          Base.push_back(LocOp::add(-D));
        }
        int64_t D2 = R.range(1, 6);
        Pumped.push_back(LocOp::add(D));
        Pumped.push_back(LocOp::add(-D));
        Pumped.push_back(LocOp::add(D2));
        Pumped.push_back(LocOp::add(-D2));
        break;
      }
      case 1: { // A read (pumped: several reads).
        Base.push_back(LocOp::read(Value::of(Cur)));
        Pumped.push_back(LocOp::read(Value::of(Cur)));
        Pumped.push_back(LocOp::read(Value::of(Cur)));
        break;
      }
      default: { // An unbalanced add: not collapsible, kept verbatim.
        int64_t D = R.range(1, 6);
        Base.push_back(LocOp::add(D));
        Pumped.push_back(LocOp::add(D));
        Cur += D;
        break;
      }
      }
    }
    EXPECT_EQ(sigOf(Base), sigOf(Pumped)) << "iteration " << Iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PumpingProperty,
                         ::testing::Values(31, 41, 59, 26));

// ---------------------------------------------------------------------------
// Lemma 5.1, behaviorally: if a body is idempotent, pumping it inside a
// sequence never changes any CONFLICT verdict against any other
// sequence. (The signature-invariance tests above check the cache view;
// this checks the semantics the lemma actually claims.)
// ---------------------------------------------------------------------------

#include "janus/conflict/OnlineConflict.h"

namespace {

/// Instantiates a symbolic body with fresh concrete operands and
/// appends it to \p Seq, tracking the running value for read results.
void appendInstance(LocOpSeq &Seq, const SymLocSeq &Body, Rng &R,
                    Value &Running) {
  Bindings Binds;
  std::map<SymId, bool> Syms;
  for (const SymLocOp &Op : Body)
    if (Op.Kind != LocOpKind::Read)
      Op.Operand.collectSymbols(Syms);
  for (const auto &[S, Flag] : Syms) {
    (void)Flag;
    if (S != EntrySym)
      Binds[S] = Value::of(R.range(-3, 3));
  }
  std::vector<Term> Reads;
  for (const SymLocOp &Op : Body) {
    switch (Op.Kind) {
    case LocOpKind::Read:
      Seq.push_back(LocOp::read(Running));
      break;
    case LocOpKind::Write: {
      Value V;
      if (Op.Operand.kind() == Term::Kind::ReadPlus) {
        // The bodies used here always reference their most recent read,
        // whose observed value is recoverable from the emitted ops.
        int64_t Base = 0;
        for (auto It = Seq.rbegin(); It != Seq.rend(); ++It)
          if (It->Kind == LocOpKind::Read) {
            Base = It->ReadResult.isInt() ? It->ReadResult.asInt() : 0;
            break;
          }
        V = Value::of(Base + Op.Operand.readOffset());
      } else {
        std::optional<Value> Eval = Op.Operand.evaluate(Binds);
        V = Eval ? *Eval : Value::of(int64_t(0));
      }
      Seq.push_back(LocOp::write(V));
      break;
    }
    case LocOpKind::Add: {
      std::optional<Value> Eval = Op.Operand.evaluate(Binds);
      int64_t D = Eval && Eval->isInt() ? Eval->asInt() : 1;
      Seq.push_back(LocOp::add(D));
      break;
    }
    }
    Running = applyLocOp(Running, Seq.back());
  }
}

} // namespace

class Lemma51Behavioral : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Lemma51Behavioral, PumpingPreservesConflictVerdicts) {
  Rng R(GetParam());
  // Idempotent bodies drawn from the shapes the workloads produce.
  const std::vector<SymLocSeq> Bodies = {
      {SymLocOp::read()},
      {SymLocOp::add(Term::intSym(1)), SymLocOp::add(*Term::intSym(1).negated())},
      {SymLocOp::read(), SymLocOp::write(Term::readPlus(0, 1)),
       SymLocOp::read(), SymLocOp::write(Term::readPlus(1, -1))},
      {SymLocOp::write(Term::intSym(2)),
       SymLocOp::write(Term::constant(Value::absent()))},
  };
  for (int Iter = 0; Iter != 120; ++Iter) {
    const SymLocSeq &Body = Bodies[R.below(Bodies.size())];
    ASSERT_TRUE(isIdempotent(Body));

    int64_t EntryInt = R.range(0, 5);
    Value Entry = Value::of(EntryInt);

    // Both sequences share an identical prefix, first body instance and
    // suffix; the pumped variant inserts extra instances after the
    // first (Lemma 5.1's s1 · s2 · s2 · s3 shape).
    bool WithPrefix = R.chance(1, 2);
    int64_t PrefixDelta = R.range(-2, 2);
    bool WithSuffix = R.chance(1, 2);
    uint64_t FirstSeed = R.next();
    uint64_t ExtraSeed = R.next();
    int ExtraReps = 1 + static_cast<int>(R.below(3));

    auto Build = [&](bool Pump) {
      LocOpSeq Seq;
      Value Running = Entry;
      if (WithPrefix) {
        Seq.push_back(LocOp::add(PrefixDelta));
        Running = applyLocOp(Running, Seq.back());
      }
      Rng First(FirstSeed);
      appendInstance(Seq, Body, First, Running);
      if (Pump) {
        Rng Extra(ExtraSeed);
        for (int K = 0; K != ExtraReps; ++K)
          appendInstance(Seq, Body, Extra, Running);
      }
      if (WithSuffix)
        Seq.push_back(LocOp::read(Running));
      return Seq;
    };
    LocOpSeq Once = Build(false);
    LocOpSeq Pumped = Build(true);

    // Random other sequence.
    LocOpSeq Other;
    for (int K = 0, E = 1 + static_cast<int>(R.below(3)); K != E; ++K) {
      switch (R.below(3)) {
      case 0:
        Other.push_back(LocOp::add(R.range(-2, 2)));
        break;
      case 1:
        Other.push_back(LocOp::read());
        break;
      default:
        Other.push_back(LocOp::write(Value::of(R.range(0, 4))));
        break;
      }
    }

    EXPECT_EQ(janus::conflict::conflictOnline(Entry, Once, Other),
              janus::conflict::conflictOnline(Entry, Pumped, Other))
        << "iteration " << Iter
        << "\n once   = " << sequenceToString(Once)
        << "\n pumped = " << sequenceToString(Pumped)
        << "\n other  = " << sequenceToString(Other);
    EXPECT_EQ(janus::conflict::conflictOnline(Entry, Other, Once),
              janus::conflict::conflictOnline(Entry, Other, Pumped))
        << "iteration " << Iter << " (history side)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma51Behavioral,
                         ::testing::Values(1001, 1002, 1003));
