//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for the relational instantiation (paper §6):
/// primitive operations (Table 2), footprints (Table 3), the logical
/// encoding of relation contents (Table 4) and SAT-backed equivalence /
/// commutativity testing (§6.2).
///
//===----------------------------------------------------------------------===//

#include "janus/relational/Encoding.h"
#include "janus/relational/RelOp.h"
#include "janus/relational/Relation.h"
#include "janus/support/Rng.h"

#include <gtest/gtest.h>

using namespace janus;
using namespace janus::relational;

namespace {

/// The paper's running example: BitSet as a 2-ary relation mapping
/// integral indices to boolean values, with FD {idx} -> {val}.
SchemaRef bitSetSchema() {
  return std::make_shared<Schema>(
      std::vector<std::string>{"idx", "val"}, std::vector<uint32_t>{0});
}

Tuple bit(int64_t Idx, bool Val) {
  return Tuple({Value::of(Idx), Value::of(Val)});
}

/// A schema with no FD (a plain set of pairs).
SchemaRef pairSchema() {
  return std::make_shared<Schema>(std::vector<std::string>{"a", "b"});
}

Tuple pairT(int64_t A, int64_t B) {
  return Tuple({Value::of(A), Value::of(B)});
}

} // namespace

TEST(SchemaTest, FDPartitionsColumns) {
  SchemaRef S = bitSetSchema();
  EXPECT_TRUE(S->hasFD());
  EXPECT_EQ(S->fdDomain(), (std::vector<uint32_t>{0}));
  EXPECT_EQ(S->fdRange(), (std::vector<uint32_t>{1}));
  EXPECT_EQ(S->columnIndex("val"), 1u);
  EXPECT_FALSE(pairSchema()->hasFD());
}

TEST(RelationTest, InsertDisplacesMatchingTuplesUnderFD) {
  // Paper §3 step 1: "setting the bit at index n to value x translates
  // into removing the (unique) tuple whose first component is n and
  // then inserting (n, x)". Our insert does both at once (Table 2).
  Relation R(bitSetSchema());
  R = R.insert(bit(3, false));
  R = R.insert(bit(3, true)); // Displaces (3,false).
  EXPECT_EQ(R.size(), 1u);
  EXPECT_TRUE(R.contains(bit(3, true)));
  EXPECT_FALSE(R.contains(bit(3, false)));
}

TEST(RelationTest, InsertWithoutFDDisplacesOnlyExactDuplicates) {
  Relation R(pairSchema());
  R = R.insert(pairT(1, 2));
  R = R.insert(pairT(1, 3)); // No FD: both stay.
  EXPECT_EQ(R.size(), 2u);
  R = R.insert(pairT(1, 2)); // Exact duplicate: idempotent.
  EXPECT_EQ(R.size(), 2u);
}

TEST(RelationTest, RemoveEnsuresAbsence) {
  Relation R(bitSetSchema());
  R = R.insert(bit(1, true)).insert(bit(2, false));
  R = R.remove(bit(1, true));
  EXPECT_EQ(R.size(), 1u);
  R = R.remove(bit(9, true)); // Absent: no-op.
  EXPECT_EQ(R.size(), 1u);
}

TEST(RelationTest, SelectIsAQuery) {
  // Paper: "a relational description of the get operation is a select
  // query".
  Relation R(bitSetSchema());
  R = R.insert(bit(1, true)).insert(bit(2, false)).insert(bit(3, true));
  Relation TrueBits = R.select(TupleFormula::mkEq(1, Value::of(true)));
  EXPECT_EQ(TrueBits.size(), 2u);
  Relation Bit2 = R.select(TupleFormula::mkEq(0, Value::of(int64_t(2))));
  EXPECT_EQ(Bit2.size(), 1u);
  EXPECT_TRUE(Bit2.contains(bit(2, false)));
}

TEST(RelationTest, SetAlgebra) {
  Relation A(pairSchema()), B(pairSchema());
  A = A.insert(pairT(1, 1)).insert(pairT(2, 2));
  B = B.insert(pairT(2, 2)).insert(pairT(3, 3));
  EXPECT_EQ(A.unionWith(B).size(), 3u);
  EXPECT_EQ(A.intersectWith(B).size(), 1u);
  EXPECT_EQ(A.subtract(B).size(), 1u);
  EXPECT_TRUE(A.subtract(B).contains(pairT(1, 1)));
}

TEST(TupleFormulaTest, Satisfaction) {
  // t |= c = v iff t_c = v; plus the boolean connectives (Table 1).
  Tuple T = bit(5, true);
  EXPECT_TRUE(TupleFormula::mkTrue().satisfiedBy(T));
  EXPECT_FALSE(TupleFormula::mkFalse().satisfiedBy(T));
  EXPECT_TRUE(TupleFormula::mkEq(0, Value::of(int64_t(5))).satisfiedBy(T));
  EXPECT_FALSE(TupleFormula::mkEq(0, Value::of(int64_t(6))).satisfiedBy(T));
  auto F = TupleFormula::mkAnd(TupleFormula::mkEq(1, Value::of(true)),
                               TupleFormula::mkNot(TupleFormula::mkEq(
                                   0, Value::of(int64_t(9)))));
  EXPECT_TRUE(F.satisfiedBy(T));
  auto G = TupleFormula::mkOr(TupleFormula::mkEq(0, Value::of(int64_t(9))),
                              TupleFormula::mkFalse());
  EXPECT_FALSE(G.satisfiedBy(T));
}

TEST(FootprintTest, InsertReadsAndWritesDisplacedTuples) {
  Relation R(bitSetSchema());
  R = R.insert(bit(3, false));
  Footprint FP = footprintOf(R, RelOp::insert(bit(3, true)));
  EXPECT_TRUE(FP.Read.count(bit(3, false)));
  EXPECT_TRUE(FP.Write.count(bit(3, false)));
  EXPECT_TRUE(FP.Write.count(bit(3, true)));
}

TEST(FootprintTest, RemoveOfAbsentTupleIsARead) {
  // Table 3 note: "tuple t belongs in the read set of remove r t if r
  // does not contain t".
  Relation R(bitSetSchema());
  Footprint Absent = footprintOf(R, RelOp::remove(bit(1, true)));
  EXPECT_TRUE(Absent.Read.count(bit(1, true)));
  EXPECT_TRUE(Absent.Write.empty());

  R = R.insert(bit(1, true));
  Footprint Present = footprintOf(R, RelOp::remove(bit(1, true)));
  EXPECT_TRUE(Present.Write.count(bit(1, true)));
  EXPECT_TRUE(Present.Read.empty());
}

TEST(FootprintTest, SelectReadsSelectedTuples) {
  Relation R(bitSetSchema());
  R = R.insert(bit(1, true)).insert(bit(2, false));
  Footprint FP =
      footprintOf(R, RelOp::select(TupleFormula::mkEq(1, Value::of(true))));
  EXPECT_EQ(FP.Read.size(), 1u);
  EXPECT_TRUE(FP.Read.count(bit(1, true)));
  EXPECT_TRUE(FP.Write.empty());
}

TEST(FootprintTest, DependencyPerEquationOne) {
  Footprint A, B, C;
  A.Write.insert(bit(1, true));
  B.Read.insert(bit(1, true));
  C.Read.insert(bit(2, true));
  EXPECT_TRUE(A.dependsOn(B));
  EXPECT_TRUE(B.dependsOn(A));
  EXPECT_FALSE(A.dependsOn(C));
  // Input (read-read) dependencies are subsumed by Equation 1.
  Footprint D;
  D.Read.insert(bit(1, true));
  EXPECT_TRUE(B.dependsOn(D));
}

TEST(TransformerTest, AppliesInOrderAndCollectsSelections) {
  // BitSet::set(3, true); BitSet::get(3).
  Transformer T;
  T.append(RelOp::insert(bit(3, true)));
  T.append(RelOp::select(TupleFormula::mkEq(0, Value::of(int64_t(3)))));
  Relation R(bitSetSchema());
  auto Result = T.apply(R);
  EXPECT_EQ(Result.FinalState.size(), 1u);
  ASSERT_EQ(Result.Selections.size(), 1u);
  EXPECT_TRUE(Result.Selections[0].contains(bit(3, true)));
}

TEST(TransformerTest, CumulativeFootprint) {
  Relation R(bitSetSchema());
  R = R.insert(bit(1, false));
  Transformer T;
  T.append(RelOp::insert(bit(1, true)));
  T.append(RelOp::select(TupleFormula::mkEq(0, Value::of(int64_t(1)))));
  Footprint FP = T.footprint(R);
  EXPECT_TRUE(FP.Write.count(bit(1, true)));
  EXPECT_TRUE(FP.Write.count(bit(1, false)));
  EXPECT_TRUE(FP.Read.count(bit(1, true))); // Select sees the new tuple.
}

// ---------------------------------------------------------------------------
// Logical encoding (Table 4) and SAT-backed equivalence (§6.2).
// ---------------------------------------------------------------------------

namespace {

/// Oracle: checks that the encoding of relation R is satisfied exactly
/// by assignments describing tuples of R, over the atom universe.
void expectEncodingMatches(const Relation &R) {
  sat::FormulaArena Arena;
  AtomTable Atoms(Arena);
  sat::Formula F = encodeRelation(Arena, Atoms, R);
  for (const Tuple &T : R.tuples()) {
    // Build the assignment corresponding to T and evaluate.
    std::vector<uint32_t> AtomIds;
    Arena.collectAtoms(F, AtomIds);
    uint32_t MaxAtom = 0;
    for (uint32_t A : AtomIds)
      MaxAtom = std::max(MaxAtom, A);
    std::vector<bool> Assign(MaxAtom + 1, false);
    for (uint32_t C = 0; C != R.schema().numColumns(); ++C) {
      sat::Formula AtomF = Atoms.atomFor(C, T.at(C));
      Assign.resize(
          std::max<size_t>(Assign.size(), Arena.atomId(AtomF) + 1), false);
      Assign[Arena.atomId(AtomF)] = true;
    }
    EXPECT_TRUE(Arena.evaluate(F, Assign))
        << "tuple " << T.toString() << " not described by encoding";
  }
}

} // namespace

TEST(EncodingTest, EmptyRelationEncodesFalse) {
  sat::FormulaArena Arena;
  AtomTable Atoms(Arena);
  Relation R(bitSetSchema());
  sat::Formula F = encodeRelation(Arena, Atoms, R);
  EXPECT_EQ(Arena.connective(F), sat::Connective::False);
}

TEST(EncodingTest, TuplesSatisfyTheirEncoding) {
  Relation R(bitSetSchema());
  R = R.insert(bit(1, true)).insert(bit(2, false)).insert(bit(7, true));
  expectEncodingMatches(R);
}

TEST(EncodingTest, SymbolicApplicationMatchesConcrete) {
  // Property: for random op sequences, the Table 4 symbolic application
  // starting from the encoded initial state is SAT-equivalent to the
  // encoding of the concretely computed final state.
  Rng Rand(2024);
  for (int Iter = 0; Iter != 30; ++Iter) {
    Relation State(bitSetSchema());
    // Random initial content.
    for (int I = 0, E = static_cast<int>(Rand.below(4)); I != E; ++I)
      State = State.insert(bit(Rand.below(3), Rand.chance(1, 2)));

    Transformer T;
    for (int I = 0, E = 1 + static_cast<int>(Rand.below(5)); I != E; ++I) {
      int64_t Idx = static_cast<int64_t>(Rand.below(3));
      bool Val = Rand.chance(1, 2);
      switch (Rand.below(3)) {
      case 0:
        T.append(RelOp::insert(bit(Idx, Val)));
        break;
      case 1:
        T.append(RelOp::remove(bit(Idx, Val)));
        break;
      default:
        T.append(RelOp::select(TupleFormula::mkEq(0, Value::of(Idx))));
        break;
      }
    }

    Relation Final = T.apply(State).FinalState;

    sat::FormulaArena Arena;
    AtomTable Atoms(Arena);
    sat::Formula Initial = encodeRelation(Arena, Atoms, State);
    sat::Formula SymFinal = applyTransformerSymbolic(
        Arena, Atoms, *State.schemaRef(), Initial, T, nullptr);
    sat::Formula ConcreteFinal = encodeRelation(Arena, Atoms, Final);
    EXPECT_EQ(formulasEquivalent(Arena, Atoms, SymFinal, ConcreteFinal),
              sat::Equivalence::Equivalent)
        << "iteration " << Iter;
  }
}

TEST(CommutativityTest, BitSetWritesToDistinctIndicesCommute) {
  Relation Empty(bitSetSchema());
  Transformer SetBit1, SetBit2;
  SetBit1.append(RelOp::insert(bit(1, true)));
  SetBit2.append(RelOp::insert(bit(2, true)));
  EXPECT_EQ(transformersCommuteSymbolic(Empty, SetBit1, SetBit2),
            sat::Equivalence::Equivalent);
}

TEST(CommutativityTest, ConflictingWritesDoNotCommute) {
  Relation Empty(bitSetSchema());
  Transformer SetTrue, SetFalse;
  SetTrue.append(RelOp::insert(bit(1, true)));
  SetFalse.append(RelOp::insert(bit(1, false)));
  EXPECT_EQ(transformersCommuteSymbolic(Empty, SetTrue, SetFalse),
            sat::Equivalence::Inequivalent);
}

TEST(CommutativityTest, EqualWritesCommute) {
  // The equal-writes pattern (paper §2, Weka): distinct transactions
  // assigning the same value commute.
  Relation Empty(bitSetSchema());
  Transformer A, B;
  A.append(RelOp::insert(bit(1, true)));
  B.append(RelOp::insert(bit(1, true)));
  EXPECT_EQ(transformersCommuteSymbolic(Empty, A, B),
            sat::Equivalence::Equivalent);
}

TEST(CommutativityTest, IdentitySequencesCommuteOnAllStates) {
  // The identity pattern (paper §2, JFileSync): insert-then-remove of
  // the same tuple is the identity on states not containing it; for
  // all-states quantification the pair of balanced sequences on
  // *different* tuples commutes.
  SchemaRef S = pairSchema();
  Transformer A, B;
  A.append(RelOp::insert(pairT(1, 1)));
  A.append(RelOp::remove(pairT(1, 1)));
  B.append(RelOp::insert(pairT(2, 2)));
  B.append(RelOp::remove(pairT(2, 2)));
  EXPECT_EQ(transformersCommuteForAllStates(S, A, B),
            sat::Equivalence::Equivalent);
}

TEST(CommutativityTest, AllStatesQuantificationIsStrongerThanConcrete) {
  // insert(1,true) vs insert(1,false): on the empty state they disagree;
  // for-all-states must also say Inequivalent.
  SchemaRef S = bitSetSchema();
  Transformer A, B;
  A.append(RelOp::insert(bit(1, true)));
  B.append(RelOp::insert(bit(1, false)));
  EXPECT_EQ(transformersCommuteForAllStates(S, A, B),
            sat::Equivalence::Inequivalent);

  // Remove-remove of the same tuple commutes on every state.
  Transformer C, D;
  C.append(RelOp::remove(bit(3, true)));
  D.append(RelOp::remove(bit(3, true)));
  EXPECT_EQ(transformersCommuteForAllStates(S, C, D),
            sat::Equivalence::Equivalent);
}

TEST(CommutativityTest, InsertRemoveOrderMatters) {
  // insert t vs remove t do not commute (final presence of t differs).
  SchemaRef S = bitSetSchema();
  Transformer Ins, Rem;
  Ins.append(RelOp::insert(bit(1, true)));
  Rem.append(RelOp::remove(bit(1, true)));
  EXPECT_EQ(transformersCommuteForAllStates(S, Ins, Rem),
            sat::Equivalence::Inequivalent);
}

/// Property: symbolic commutativity (on a concrete state) agrees with
/// direct concrete evaluation of both orders.
class CommuteRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CommuteRandom, SymbolicMatchesConcrete) {
  Rng Rand(GetParam());
  for (int Iter = 0; Iter != 25; ++Iter) {
    Relation State(bitSetSchema());
    for (int I = 0, E = static_cast<int>(Rand.below(3)); I != E; ++I)
      State = State.insert(bit(Rand.below(3), Rand.chance(1, 2)));

    auto RandomTransformer = [&Rand]() {
      Transformer T;
      for (int I = 0, E = 1 + static_cast<int>(Rand.below(3)); I != E; ++I) {
        int64_t Idx = static_cast<int64_t>(Rand.below(3));
        bool Val = Rand.chance(1, 2);
        if (Rand.chance(1, 2))
          T.append(RelOp::insert(bit(Idx, Val)));
        else
          T.append(RelOp::remove(bit(Idx, Val)));
      }
      return T;
    };

    Transformer A = RandomTransformer(), B = RandomTransformer();
    Relation AB = B.apply(A.apply(State).FinalState).FinalState;
    Relation BA = A.apply(B.apply(State).FinalState).FinalState;
    bool ConcreteEq = (AB == BA);
    EXPECT_EQ(transformersCommuteSymbolic(State, A, B) ==
                  sat::Equivalence::Equivalent,
              ConcreteEq)
        << "iteration " << Iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommuteRandom,
                         ::testing::Values(7, 17, 27, 37));
