file(REMOVE_RECURSE
  "../bench/table6_inputs"
  "../bench/table6_inputs.pdb"
  "CMakeFiles/table6_inputs.dir/table6_inputs.cpp.o"
  "CMakeFiles/table6_inputs.dir/table6_inputs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
