# Empty dependencies file for table6_inputs.
# This may be replaced when dependencies are built.
