file(REMOVE_RECURSE
  "../bench/fig10_retries"
  "../bench/fig10_retries.pdb"
  "CMakeFiles/fig10_retries.dir/fig10_retries.cpp.o"
  "CMakeFiles/fig10_retries.dir/fig10_retries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_retries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
