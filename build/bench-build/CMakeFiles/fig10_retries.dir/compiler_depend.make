# Empty compiler generated dependencies file for fig10_retries.
# This may be replaced when dependencies are built.
