file(REMOVE_RECURSE
  "../bench/fig9_speedup"
  "../bench/fig9_speedup.pdb"
  "CMakeFiles/fig9_speedup.dir/fig9_speedup.cpp.o"
  "CMakeFiles/fig9_speedup.dir/fig9_speedup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
