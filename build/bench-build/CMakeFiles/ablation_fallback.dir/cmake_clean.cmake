file(REMOVE_RECURSE
  "../bench/ablation_fallback"
  "../bench/ablation_fallback.pdb"
  "CMakeFiles/ablation_fallback.dir/ablation_fallback.cpp.o"
  "CMakeFiles/ablation_fallback.dir/ablation_fallback.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fallback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
