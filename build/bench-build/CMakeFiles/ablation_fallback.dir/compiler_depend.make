# Empty compiler generated dependencies file for ablation_fallback.
# This may be replaced when dependencies are built.
