# Empty dependencies file for ablation_reclaim.
# This may be replaced when dependencies are built.
