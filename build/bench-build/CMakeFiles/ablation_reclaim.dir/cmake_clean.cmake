file(REMOVE_RECURSE
  "../bench/ablation_reclaim"
  "../bench/ablation_reclaim.pdb"
  "CMakeFiles/ablation_reclaim.dir/ablation_reclaim.cpp.o"
  "CMakeFiles/ablation_reclaim.dir/ablation_reclaim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
