# Empty compiler generated dependencies file for ablation_reclaim.
# This may be replaced when dependencies are built.
