file(REMOVE_RECURSE
  "../bench/micro_detection"
  "../bench/micro_detection.pdb"
  "CMakeFiles/micro_detection.dir/micro_detection.cpp.o"
  "CMakeFiles/micro_detection.dir/micro_detection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
