# Empty dependencies file for micro_detection.
# This may be replaced when dependencies are built.
