# Empty compiler generated dependencies file for table5_patterns.
# This may be replaced when dependencies are built.
