file(REMOVE_RECURSE
  "../bench/table5_patterns"
  "../bench/table5_patterns.pdb"
  "CMakeFiles/table5_patterns.dir/table5_patterns.cpp.o"
  "CMakeFiles/table5_patterns.dir/table5_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
