file(REMOVE_RECURSE
  "../bench/fig11_misses"
  "../bench/fig11_misses.pdb"
  "CMakeFiles/fig11_misses.dir/fig11_misses.cpp.o"
  "CMakeFiles/fig11_misses.dir/fig11_misses.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
