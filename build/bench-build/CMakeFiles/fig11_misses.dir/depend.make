# Empty dependencies file for fig11_misses.
# This may be replaced when dependencies are built.
