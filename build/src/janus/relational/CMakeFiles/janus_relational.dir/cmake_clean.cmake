file(REMOVE_RECURSE
  "CMakeFiles/janus_relational.dir/Encoding.cpp.o"
  "CMakeFiles/janus_relational.dir/Encoding.cpp.o.d"
  "CMakeFiles/janus_relational.dir/RelOp.cpp.o"
  "CMakeFiles/janus_relational.dir/RelOp.cpp.o.d"
  "CMakeFiles/janus_relational.dir/Relation.cpp.o"
  "CMakeFiles/janus_relational.dir/Relation.cpp.o.d"
  "libjanus_relational.a"
  "libjanus_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
