file(REMOVE_RECURSE
  "libjanus_relational.a"
)
