
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/janus/relational/Encoding.cpp" "src/janus/relational/CMakeFiles/janus_relational.dir/Encoding.cpp.o" "gcc" "src/janus/relational/CMakeFiles/janus_relational.dir/Encoding.cpp.o.d"
  "/root/repo/src/janus/relational/RelOp.cpp" "src/janus/relational/CMakeFiles/janus_relational.dir/RelOp.cpp.o" "gcc" "src/janus/relational/CMakeFiles/janus_relational.dir/RelOp.cpp.o.d"
  "/root/repo/src/janus/relational/Relation.cpp" "src/janus/relational/CMakeFiles/janus_relational.dir/Relation.cpp.o" "gcc" "src/janus/relational/CMakeFiles/janus_relational.dir/Relation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/janus/support/CMakeFiles/janus_support.dir/DependInfo.cmake"
  "/root/repo/build/src/janus/sat/CMakeFiles/janus_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
