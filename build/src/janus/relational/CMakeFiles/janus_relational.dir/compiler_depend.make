# Empty compiler generated dependencies file for janus_relational.
# This may be replaced when dependencies are built.
