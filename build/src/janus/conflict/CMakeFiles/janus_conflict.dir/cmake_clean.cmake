file(REMOVE_RECURSE
  "CMakeFiles/janus_conflict.dir/CommutativityCache.cpp.o"
  "CMakeFiles/janus_conflict.dir/CommutativityCache.cpp.o.d"
  "CMakeFiles/janus_conflict.dir/Decompose.cpp.o"
  "CMakeFiles/janus_conflict.dir/Decompose.cpp.o.d"
  "CMakeFiles/janus_conflict.dir/Explain.cpp.o"
  "CMakeFiles/janus_conflict.dir/Explain.cpp.o.d"
  "CMakeFiles/janus_conflict.dir/OnlineConflict.cpp.o"
  "CMakeFiles/janus_conflict.dir/OnlineConflict.cpp.o.d"
  "CMakeFiles/janus_conflict.dir/SequenceDetector.cpp.o"
  "CMakeFiles/janus_conflict.dir/SequenceDetector.cpp.o.d"
  "libjanus_conflict.a"
  "libjanus_conflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
