file(REMOVE_RECURSE
  "libjanus_conflict.a"
)
