# Empty dependencies file for janus_conflict.
# This may be replaced when dependencies are built.
