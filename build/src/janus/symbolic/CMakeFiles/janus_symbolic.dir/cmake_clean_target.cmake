file(REMOVE_RECURSE
  "libjanus_symbolic.a"
)
