file(REMOVE_RECURSE
  "CMakeFiles/janus_symbolic.dir/Condition.cpp.o"
  "CMakeFiles/janus_symbolic.dir/Condition.cpp.o.d"
  "CMakeFiles/janus_symbolic.dir/LocOp.cpp.o"
  "CMakeFiles/janus_symbolic.dir/LocOp.cpp.o.d"
  "CMakeFiles/janus_symbolic.dir/SymSeq.cpp.o"
  "CMakeFiles/janus_symbolic.dir/SymSeq.cpp.o.d"
  "CMakeFiles/janus_symbolic.dir/Term.cpp.o"
  "CMakeFiles/janus_symbolic.dir/Term.cpp.o.d"
  "libjanus_symbolic.a"
  "libjanus_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
