# Empty compiler generated dependencies file for janus_symbolic.
# This may be replaced when dependencies are built.
