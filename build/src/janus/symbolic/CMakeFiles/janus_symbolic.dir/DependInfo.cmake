
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/janus/symbolic/Condition.cpp" "src/janus/symbolic/CMakeFiles/janus_symbolic.dir/Condition.cpp.o" "gcc" "src/janus/symbolic/CMakeFiles/janus_symbolic.dir/Condition.cpp.o.d"
  "/root/repo/src/janus/symbolic/LocOp.cpp" "src/janus/symbolic/CMakeFiles/janus_symbolic.dir/LocOp.cpp.o" "gcc" "src/janus/symbolic/CMakeFiles/janus_symbolic.dir/LocOp.cpp.o.d"
  "/root/repo/src/janus/symbolic/SymSeq.cpp" "src/janus/symbolic/CMakeFiles/janus_symbolic.dir/SymSeq.cpp.o" "gcc" "src/janus/symbolic/CMakeFiles/janus_symbolic.dir/SymSeq.cpp.o.d"
  "/root/repo/src/janus/symbolic/Term.cpp" "src/janus/symbolic/CMakeFiles/janus_symbolic.dir/Term.cpp.o" "gcc" "src/janus/symbolic/CMakeFiles/janus_symbolic.dir/Term.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/janus/support/CMakeFiles/janus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
