file(REMOVE_RECURSE
  "CMakeFiles/janus_sat.dir/PropFormula.cpp.o"
  "CMakeFiles/janus_sat.dir/PropFormula.cpp.o.d"
  "CMakeFiles/janus_sat.dir/Solver.cpp.o"
  "CMakeFiles/janus_sat.dir/Solver.cpp.o.d"
  "libjanus_sat.a"
  "libjanus_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
