file(REMOVE_RECURSE
  "libjanus_sat.a"
)
