# Empty compiler generated dependencies file for janus_sat.
# This may be replaced when dependencies are built.
