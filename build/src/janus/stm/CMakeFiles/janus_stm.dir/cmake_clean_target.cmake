file(REMOVE_RECURSE
  "libjanus_stm.a"
)
