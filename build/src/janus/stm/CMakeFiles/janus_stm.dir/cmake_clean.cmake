file(REMOVE_RECURSE
  "CMakeFiles/janus_stm.dir/Detector.cpp.o"
  "CMakeFiles/janus_stm.dir/Detector.cpp.o.d"
  "CMakeFiles/janus_stm.dir/Log.cpp.o"
  "CMakeFiles/janus_stm.dir/Log.cpp.o.d"
  "CMakeFiles/janus_stm.dir/SimRuntime.cpp.o"
  "CMakeFiles/janus_stm.dir/SimRuntime.cpp.o.d"
  "CMakeFiles/janus_stm.dir/ThreadedRuntime.cpp.o"
  "CMakeFiles/janus_stm.dir/ThreadedRuntime.cpp.o.d"
  "CMakeFiles/janus_stm.dir/TxContext.cpp.o"
  "CMakeFiles/janus_stm.dir/TxContext.cpp.o.d"
  "libjanus_stm.a"
  "libjanus_stm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_stm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
