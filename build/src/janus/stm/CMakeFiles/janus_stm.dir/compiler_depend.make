# Empty compiler generated dependencies file for janus_stm.
# This may be replaced when dependencies are built.
