file(REMOVE_RECURSE
  "CMakeFiles/janus_core.dir/Janus.cpp.o"
  "CMakeFiles/janus_core.dir/Janus.cpp.o.d"
  "libjanus_core.a"
  "libjanus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
