# Empty compiler generated dependencies file for janus_core.
# This may be replaced when dependencies are built.
