file(REMOVE_RECURSE
  "libjanus_core.a"
)
