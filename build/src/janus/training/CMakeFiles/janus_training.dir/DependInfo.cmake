
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/janus/training/DependenceGraph.cpp" "src/janus/training/CMakeFiles/janus_training.dir/DependenceGraph.cpp.o" "gcc" "src/janus/training/CMakeFiles/janus_training.dir/DependenceGraph.cpp.o.d"
  "/root/repo/src/janus/training/PatternReport.cpp" "src/janus/training/CMakeFiles/janus_training.dir/PatternReport.cpp.o" "gcc" "src/janus/training/CMakeFiles/janus_training.dir/PatternReport.cpp.o.d"
  "/root/repo/src/janus/training/RelationalCheck.cpp" "src/janus/training/CMakeFiles/janus_training.dir/RelationalCheck.cpp.o" "gcc" "src/janus/training/CMakeFiles/janus_training.dir/RelationalCheck.cpp.o.d"
  "/root/repo/src/janus/training/Trainer.cpp" "src/janus/training/CMakeFiles/janus_training.dir/Trainer.cpp.o" "gcc" "src/janus/training/CMakeFiles/janus_training.dir/Trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/janus/conflict/CMakeFiles/janus_conflict.dir/DependInfo.cmake"
  "/root/repo/build/src/janus/relational/CMakeFiles/janus_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/janus/stm/CMakeFiles/janus_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/janus/abstraction/CMakeFiles/janus_abstraction.dir/DependInfo.cmake"
  "/root/repo/build/src/janus/symbolic/CMakeFiles/janus_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/janus/sat/CMakeFiles/janus_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/janus/support/CMakeFiles/janus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
