file(REMOVE_RECURSE
  "CMakeFiles/janus_training.dir/DependenceGraph.cpp.o"
  "CMakeFiles/janus_training.dir/DependenceGraph.cpp.o.d"
  "CMakeFiles/janus_training.dir/PatternReport.cpp.o"
  "CMakeFiles/janus_training.dir/PatternReport.cpp.o.d"
  "CMakeFiles/janus_training.dir/RelationalCheck.cpp.o"
  "CMakeFiles/janus_training.dir/RelationalCheck.cpp.o.d"
  "CMakeFiles/janus_training.dir/Trainer.cpp.o"
  "CMakeFiles/janus_training.dir/Trainer.cpp.o.d"
  "libjanus_training.a"
  "libjanus_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
