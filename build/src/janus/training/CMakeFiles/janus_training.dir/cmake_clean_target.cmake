file(REMOVE_RECURSE
  "libjanus_training.a"
)
