# Empty dependencies file for janus_training.
# This may be replaced when dependencies are built.
