file(REMOVE_RECURSE
  "libjanus_workloads.a"
)
