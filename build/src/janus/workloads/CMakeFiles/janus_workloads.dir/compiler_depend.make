# Empty compiler generated dependencies file for janus_workloads.
# This may be replaced when dependencies are built.
