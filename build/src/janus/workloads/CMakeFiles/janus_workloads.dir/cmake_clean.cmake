file(REMOVE_RECURSE
  "CMakeFiles/janus_workloads.dir/CodeScan.cpp.o"
  "CMakeFiles/janus_workloads.dir/CodeScan.cpp.o.d"
  "CMakeFiles/janus_workloads.dir/FileSync.cpp.o"
  "CMakeFiles/janus_workloads.dir/FileSync.cpp.o.d"
  "CMakeFiles/janus_workloads.dir/GraphColor.cpp.o"
  "CMakeFiles/janus_workloads.dir/GraphColor.cpp.o.d"
  "CMakeFiles/janus_workloads.dir/Render.cpp.o"
  "CMakeFiles/janus_workloads.dir/Render.cpp.o.d"
  "CMakeFiles/janus_workloads.dir/Saturation.cpp.o"
  "CMakeFiles/janus_workloads.dir/Saturation.cpp.o.d"
  "CMakeFiles/janus_workloads.dir/Workload.cpp.o"
  "CMakeFiles/janus_workloads.dir/Workload.cpp.o.d"
  "libjanus_workloads.a"
  "libjanus_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
