file(REMOVE_RECURSE
  "CMakeFiles/janus_model.dir/ProtocolModel.cpp.o"
  "CMakeFiles/janus_model.dir/ProtocolModel.cpp.o.d"
  "libjanus_model.a"
  "libjanus_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
