# Empty compiler generated dependencies file for janus_model.
# This may be replaced when dependencies are built.
