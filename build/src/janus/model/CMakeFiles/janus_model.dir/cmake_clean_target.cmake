file(REMOVE_RECURSE
  "libjanus_model.a"
)
