# CMake generated Testfile for 
# Source directory: /root/repo/src/janus/support
# Build directory: /root/repo/build/src/janus/support
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
