file(REMOVE_RECURSE
  "libjanus_support.a"
)
