file(REMOVE_RECURSE
  "CMakeFiles/janus_support.dir/Format.cpp.o"
  "CMakeFiles/janus_support.dir/Format.cpp.o.d"
  "CMakeFiles/janus_support.dir/Location.cpp.o"
  "CMakeFiles/janus_support.dir/Location.cpp.o.d"
  "CMakeFiles/janus_support.dir/Value.cpp.o"
  "CMakeFiles/janus_support.dir/Value.cpp.o.d"
  "libjanus_support.a"
  "libjanus_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
