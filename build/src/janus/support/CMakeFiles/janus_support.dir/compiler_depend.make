# Empty compiler generated dependencies file for janus_support.
# This may be replaced when dependencies are built.
