file(REMOVE_RECURSE
  "CMakeFiles/janus_abstraction.dir/AbstractSeq.cpp.o"
  "CMakeFiles/janus_abstraction.dir/AbstractSeq.cpp.o.d"
  "CMakeFiles/janus_abstraction.dir/Symbolize.cpp.o"
  "CMakeFiles/janus_abstraction.dir/Symbolize.cpp.o.d"
  "libjanus_abstraction.a"
  "libjanus_abstraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_abstraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
