file(REMOVE_RECURSE
  "libjanus_abstraction.a"
)
