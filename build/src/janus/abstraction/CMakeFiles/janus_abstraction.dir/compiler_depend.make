# Empty compiler generated dependencies file for janus_abstraction.
# This may be replaced when dependencies are built.
