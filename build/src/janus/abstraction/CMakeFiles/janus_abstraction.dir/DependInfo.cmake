
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/janus/abstraction/AbstractSeq.cpp" "src/janus/abstraction/CMakeFiles/janus_abstraction.dir/AbstractSeq.cpp.o" "gcc" "src/janus/abstraction/CMakeFiles/janus_abstraction.dir/AbstractSeq.cpp.o.d"
  "/root/repo/src/janus/abstraction/Symbolize.cpp" "src/janus/abstraction/CMakeFiles/janus_abstraction.dir/Symbolize.cpp.o" "gcc" "src/janus/abstraction/CMakeFiles/janus_abstraction.dir/Symbolize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/janus/symbolic/CMakeFiles/janus_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/janus/support/CMakeFiles/janus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
