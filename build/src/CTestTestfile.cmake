# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("janus/support")
subdirs("janus/sat")
subdirs("janus/persist")
subdirs("janus/relational")
subdirs("janus/symbolic")
subdirs("janus/stm")
subdirs("janus/conflict")
subdirs("janus/abstraction")
subdirs("janus/training")
subdirs("janus/adt")
subdirs("janus/core")
subdirs("janus/workloads")
subdirs("janus/model")
