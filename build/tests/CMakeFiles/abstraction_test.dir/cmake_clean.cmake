file(REMOVE_RECURSE
  "CMakeFiles/abstraction_test.dir/abstraction_test.cpp.o"
  "CMakeFiles/abstraction_test.dir/abstraction_test.cpp.o.d"
  "abstraction_test"
  "abstraction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abstraction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
