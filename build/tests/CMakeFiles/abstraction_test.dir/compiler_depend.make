# Empty compiler generated dependencies file for abstraction_test.
# This may be replaced when dependencies are built.
