# Empty dependencies file for training_test.
# This may be replaced when dependencies are built.
