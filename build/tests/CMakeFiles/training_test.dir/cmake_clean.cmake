file(REMOVE_RECURSE
  "CMakeFiles/training_test.dir/training_test.cpp.o"
  "CMakeFiles/training_test.dir/training_test.cpp.o.d"
  "training_test"
  "training_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
