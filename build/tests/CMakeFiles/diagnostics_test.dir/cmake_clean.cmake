file(REMOVE_RECURSE
  "CMakeFiles/diagnostics_test.dir/diagnostics_test.cpp.o"
  "CMakeFiles/diagnostics_test.dir/diagnostics_test.cpp.o.d"
  "diagnostics_test"
  "diagnostics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnostics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
