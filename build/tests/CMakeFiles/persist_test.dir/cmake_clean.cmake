file(REMOVE_RECURSE
  "CMakeFiles/persist_test.dir/persist_test.cpp.o"
  "CMakeFiles/persist_test.dir/persist_test.cpp.o.d"
  "persist_test"
  "persist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
