# Empty dependencies file for persist_test.
# This may be replaced when dependencies are built.
