file(REMOVE_RECURSE
  "CMakeFiles/stm_test.dir/stm_test.cpp.o"
  "CMakeFiles/stm_test.dir/stm_test.cpp.o.d"
  "stm_test"
  "stm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
