file(REMOVE_RECURSE
  "CMakeFiles/adt_test.dir/adt_test.cpp.o"
  "CMakeFiles/adt_test.dir/adt_test.cpp.o.d"
  "adt_test"
  "adt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
