# Empty dependencies file for adt_test.
# This may be replaced when dependencies are built.
