# Empty compiler generated dependencies file for janus.
# This may be replaced when dependencies are built.
