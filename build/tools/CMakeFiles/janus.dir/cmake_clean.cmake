file(REMOVE_RECURSE
  "CMakeFiles/janus.dir/janus_cli.cpp.o"
  "CMakeFiles/janus.dir/janus_cli.cpp.o.d"
  "janus"
  "janus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
