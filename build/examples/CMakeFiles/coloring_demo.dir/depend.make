# Empty dependencies file for coloring_demo.
# This may be replaced when dependencies are built.
