file(REMOVE_RECURSE
  "CMakeFiles/coloring_demo.dir/coloring_demo.cpp.o"
  "CMakeFiles/coloring_demo.dir/coloring_demo.cpp.o.d"
  "coloring_demo"
  "coloring_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coloring_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
