# Empty dependencies file for custom_adt.
# This may be replaced when dependencies are built.
