file(REMOVE_RECURSE
  "CMakeFiles/custom_adt.dir/custom_adt.cpp.o"
  "CMakeFiles/custom_adt.dir/custom_adt.cpp.o.d"
  "custom_adt"
  "custom_adt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_adt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
