# Empty dependencies file for filesync_demo.
# This may be replaced when dependencies are built.
