file(REMOVE_RECURSE
  "CMakeFiles/filesync_demo.dir/filesync_demo.cpp.o"
  "CMakeFiles/filesync_demo.dir/filesync_demo.cpp.o.d"
  "filesync_demo"
  "filesync_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filesync_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
